//! The pipeline: an execution-driven, cycle-level out-of-order core.
//!
//! Each simulated cycle runs commit → writeback → issue → rename → fetch,
//! then applies at most one pipeline flush (the oldest discovered this
//! cycle). The frontend predicts and fetches one prediction block per
//! cycle; instructions travel through a latency queue modelling the
//! frontend depth before renaming. Wrong-path instructions execute with
//! real values — the property squash reuse depends on.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use mssr_isa::{ArchReg, Inst, Opcode, Pc, Program};

use crate::account::{Category, CycleAccount};
use crate::bpred::{BranchPredictor, PredMeta};
use crate::check::{self, Rule, Violation};
use crate::ckpt::{self, CkptError, CkptReader, CkptWriter};
use crate::config::SimConfig;
use crate::engine::{
    BlockRange, EngineCtx, NoReuse, PredBlock, RenamedInst, ReuseEngine, ReuseQuery, SquashEvent,
    SquashedInst,
};
use crate::exec;
use crate::interp::{arch_step, ArchKind, ArchState};
use crate::iq::IssueQueue;
use crate::lsq::{Forward, LqEntry, Lsq, SqEntry};
use crate::mem::{Hierarchy, MainMemory};
use crate::rename::{FreeList, Prf, Rat, RgidAlloc};
use crate::rob::{BranchOutcome, BranchState, DstInfo, Rob, RobEntry};
use crate::sample::{Sample, SampleRing, Sampler, DEFAULT_RING_CAPACITY};
use crate::stats::SimStats;
use crate::trace::{CkptAction, TraceEvent, TraceKind, TraceSink, Tracer};
use crate::types::{FlushKind, FuClass, PhysReg, Rgid, SeqNum};

/// An instruction in flight between prediction and rename.
#[derive(Clone, Debug)]
struct FrontInst {
    ready_cycle: u64,
    pc: Pc,
    inst: Inst,
    pred_taken: bool,
    pred_next: Pc,
    meta: PredMeta,
    ghr_before: u64,
    ras_sp_before: u64,
}

/// A flush discovered during execution, applied at end of cycle.
#[derive(Clone, Copy, Debug)]
struct PendingFlush {
    /// First (oldest) squashed sequence number.
    first_squashed: SeqNum,
    redirect: Pc,
    kind: FlushKind,
    /// For mispredictions: the branch. Otherwise the flushed instruction.
    cause_seq: SeqNum,
    cause_pc: Pc,
}

/// Builds an [`EngineCtx`] from disjoint `Simulator` fields so the engine
/// (also a field) can be called simultaneously.
macro_rules! ectx {
    ($s:expr) => {
        EngineCtx {
            free_list: &mut $s.free_list,
            cycle: $s.cycle,
            rob_size: $s.cfg.rob_size,
            rgid_reset_requested: &mut $s.rgid_reset_requested,
        }
    };
}

/// The simulator: one out-of-order core running one program.
///
/// # Example
///
/// ```
/// use mssr_isa::{regs::*, Assembler};
/// use mssr_sim::{SimConfig, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Assembler::new();
/// a.li(T0, 41);
/// a.addi(T0, T0, 1);
/// a.st(ZERO, T0, 0x100);
/// a.halt();
/// let mut sim = Simulator::new(SimConfig::default(), a.assemble()?);
/// let stats = sim.run();
/// assert_eq!(sim.read_mem_u64(0x100), 42);
/// assert_eq!(stats.committed_instructions, 4);
/// # Ok(())
/// # }
/// ```
pub struct Simulator {
    cfg: SimConfig,
    program: Program,
    cycle: u64,
    next_seq: u64,
    squash_ctr: u64,
    halted: bool,

    bpred: BranchPredictor,
    fetch_pc: Option<Pc>,
    fetch_resume_at: u64,
    frontend_q: VecDeque<FrontInst>,

    rat: Rat,
    free_list: FreeList,
    prf: Prf,
    rgids: RgidAlloc,
    rgid_reset_requested: bool,

    rob: Rob,
    iq_int: IssueQueue,
    iq_mem: IssueQueue,
    lsq: Lsq,
    completions: BinaryHeap<Reverse<(u64, u64)>>,
    pending_flushes: Vec<PendingFlush>,

    memory: MainMemory,
    hier: Hierarchy,

    engine: Box<dyn ReuseEngine>,
    stats: SimStats,
    rgid_overflows_total: u64,
    rgid_resets_total: u64,
    tracer: Tracer,

    account: CycleAccount,
    /// After a squash, idle-ROB cycles are blamed on the flush kind until
    /// an instruction from the refilled (post-squash) stream — `seq >=`
    /// the stored boundary — commits.
    refill_blame: Option<(FlushKind, SeqNum)>,
    sampler: Sampler,
    grants_total: u64,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("cycle", &self.cycle)
            .field("engine", &self.engine.name())
            .field("halted", &self.halted)
            .field("committed", &self.stats.committed_instructions)
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Creates a simulator with the baseline [`NoReuse`] engine.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`].
    pub fn new(cfg: SimConfig, program: Program) -> Simulator {
        Simulator::with_engine(cfg, program, Box::new(NoReuse))
    }

    /// Creates a simulator with a squash-reuse engine.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`].
    pub fn with_engine(
        cfg: SimConfig,
        program: Program,
        engine: Box<dyn ReuseEngine>,
    ) -> Simulator {
        cfg.validate().expect("invalid simulator configuration");
        let fetch_pc = Some(program.base());
        Simulator {
            bpred: BranchPredictor::new(&cfg),
            fetch_pc,
            fetch_resume_at: 0,
            frontend_q: VecDeque::new(),
            rat: Rat::new(),
            free_list: FreeList::new(cfg.phys_regs, mssr_isa::NUM_ARCH_REGS),
            prf: Prf::new(cfg.phys_regs),
            rgids: RgidAlloc::new(cfg.rgid_values()),
            rgid_reset_requested: false,
            rob: Rob::new(cfg.rob_size),
            iq_int: IssueQueue::new(cfg.iq_int_size),
            iq_mem: IssueQueue::new(cfg.iq_mem_size),
            lsq: Lsq::new(cfg.lq_size, cfg.sq_size),
            completions: BinaryHeap::new(),
            pending_flushes: Vec::new(),
            memory: MainMemory::new(cfg.mem_bytes),
            hier: Hierarchy::new(&cfg),
            engine,
            stats: SimStats::default(),
            rgid_overflows_total: 0,
            rgid_resets_total: 0,
            tracer: Tracer::default(),
            account: CycleAccount::default(),
            refill_blame: None,
            sampler: Sampler::new(0, DEFAULT_RING_CAPACITY),
            grants_total: 0,
            cycle: 0,
            next_seq: 1,
            squash_ctr: 0,
            halted: false,
            program,
            cfg,
        }
    }

    /// Writes a 64-bit word into simulated memory (workload setup).
    pub fn write_mem_u64(&mut self, addr: u64, value: u64) {
        self.memory.write_u64(addr, value);
    }

    /// Reads a 64-bit word from simulated memory (result inspection).
    pub fn read_mem_u64(&self, addr: u64) -> u64 {
        self.memory.read_u64(addr)
    }

    /// Injects an external snoop request (multicore load-to-load hazard
    /// stimulus, §3.8.2).
    ///
    /// The reuse engine is notified (so squashed-load reuse candidates
    /// are poisoned), and — as in the XiangShan-style LSQ the paper
    /// assumes — any speculatively executed, uncommitted load to the
    /// snooped address is scheduled for replay at the end of the next
    /// cycle, since its value may no longer be coherent.
    pub fn inject_snoop(&mut self, addr: u64) {
        self.stats.snoops += 1;
        self.engine.on_snoop(addr, &mut ectx!(self));
        let victim = self
            .lsq
            .loads()
            .filter(|l| l.issued && l.addr.is_some_and(|a| a >> 3 == addr >> 3))
            .map(|l| l.seq)
            .min();
        if let Some(seq) = victim {
            if let Some(e) = self.rob.get(seq) {
                self.pending_flushes.push(PendingFlush {
                    first_squashed: seq,
                    redirect: e.pc,
                    kind: FlushKind::MemoryOrder,
                    cause_seq: seq,
                    cause_pc: e.pc,
                });
            }
        }
    }

    /// Whether the program has retired its `halt` (or hit a bound).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The active engine's name.
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Frontend snapshot for state dumps: fetch PC and in-flight count.
    pub(crate) fn frontend_state(&self) -> (Option<Pc>, usize) {
        (self.fetch_pc, self.frontend_q.len())
    }

    /// ROB snapshot for state dumps: occupancy, capacity, head summary.
    pub(crate) fn rob_state(&self) -> (usize, usize, Option<String>) {
        (
            self.rob.len(),
            self.rob.capacity(),
            self.rob.head().map(|e| format!("{} {} ({})", e.seq, e.pc, e.inst)),
        )
    }

    /// Allocatable physical registers.
    ///
    /// After a halted run with an empty pipeline, every transient hold
    /// (in-flight destinations, engine stream reservations that were
    /// ruled out) must have been released, so this is the basis of the
    /// free-list conservation tests: a reuse engine may never leak a
    /// physical register.
    pub fn free_phys_regs(&self) -> usize {
        self.free_list.available()
    }

    pub(crate) fn free_regs(&self) -> usize {
        self.free_list.available()
    }

    /// The committed architectural value of register `a` (read through
    /// the RAT into the physical register file). Meaningful once the
    /// pipeline has drained (e.g. after `run()` halts); used by the
    /// cross-engine equivalence tests to compare final register state.
    pub fn read_arch_reg(&self, a: ArchReg) -> u64 {
        self.prf.read(self.rat.lookup(a))
    }

    /// Current mapping of an architectural register.
    pub(crate) fn rat_entry(&self, a: ArchReg) -> (PhysReg, Rgid) {
        (self.rat.lookup(a), self.rat.rgid(a))
    }

    /// Attaches a trace sink: from the next cycle on, every pipeline
    /// event is recorded into it (see [`TraceEvent`] for the schema).
    /// Replaces — and flushes — any previously attached sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.set_sink(sink);
    }

    /// Detaches and flushes the trace sink, if any. Event counters keep
    /// their values, so [`Simulator::stats`] still reports `trace_*`.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracer.take_sink()
    }

    /// Restricts which event kinds reach the trace sink: a bitwise OR of
    /// [`TraceKind::bit`] values. The default passes everything. The
    /// harness's `--sample N` flag uses this to attach a sink masked to
    /// [`TraceKind::Sample`] only, emitting the time series without the
    /// per-instruction event stream.
    pub fn set_trace_mask(&mut self, mask: u64) {
        self.tracer.set_mask(mask);
    }

    /// Enables interval sampling: every `interval` cycles a [`Sample`] of
    /// statistics deltas is recorded into the sample ring and emitted as
    /// a [`TraceEvent::Sample`] if a trace sink is attached. `0` (the
    /// default) disables sampling. Resets any previously recorded
    /// samples.
    pub fn set_sample_interval(&mut self, interval: u64) {
        self.sampler = Sampler::new(interval, DEFAULT_RING_CAPACITY);
    }

    /// The interval samples recorded so far (empty unless
    /// [`Simulator::set_sample_interval`] enabled sampling).
    pub fn samples(&self) -> &SampleRing {
        self.sampler.ring()
    }

    /// The CPI-stack account accumulated so far (see [`crate::account`]).
    pub fn account(&self) -> &CycleAccount {
        &self.account
    }

    /// Corrupts the CPI-stack account by one slot. Test-only hook used by
    /// the invariant suite to prove the conservation rule trips; never
    /// call it anywhere else.
    #[doc(hidden)]
    pub fn corrupt_account_for_test(&mut self) {
        self.account.slots[Category::Base.index()] += 1;
    }

    /// Runs until `halt` retires or a configured bound is reached,
    /// returning the final statistics.
    pub fn run(&mut self) -> SimStats {
        while !self.halted && self.cycle < self.cfg.max_cycles {
            self.step();
        }
        self.stats()
    }

    /// Runs at most `n` cycles (stops early on halt).
    pub fn run_cycles(&mut self, n: u64) {
        for _ in 0..n {
            if self.halted || self.cycle >= self.cfg.max_cycles {
                break;
            }
            self.step();
        }
    }

    /// A statistics snapshot (cheap; can be taken mid-run).
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.cycles = self.cycle;
        s.l1_hits = self.hier.l1.hits();
        s.l1_misses = self.hier.l1.misses();
        s.l2_hits = self.hier.l2.hits();
        s.l2_misses = self.hier.l2.misses();
        s.engine = self.engine.stats();
        s.account = self.account;
        // RGID overflow/reset accounting is authoritative on the pipeline
        // side (it owns the counters); engines need not track it.
        s.engine.rgid_overflows = self.rgid_overflows_total;
        s.engine.rgid_resets = self.rgid_resets_total;
        if self.tracer.active() {
            for k in TraceKind::ALL {
                s.engine.extra.push((format!("trace_{}", k.name()), self.tracer.count(k)));
            }
        }
        s
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        let (committed, blame) = self.do_commit();
        if self.halted {
            // The final partial cycle (the one that retired `halt` or hit
            // an instruction bound) is never counted — neither in the
            // cycle counter nor in the account — which keeps the
            // conservation law `sum(slots) == cycles × commit_width`
            // exact.
            return;
        }
        self.do_writeback();
        self.do_issue();
        self.do_rename();
        self.do_fetch();
        self.handle_flushes();
        self.apply_rgid_reset();
        self.account.accrue(committed, blame, self.cfg.commit_width as u64);
        self.cycle += 1;
        if self.sampler.due(self.cycle) {
            self.take_sample();
        }
        #[cfg(debug_assertions)]
        {
            let stride = check::check_stride();
            if stride > 0 && self.cycle.is_multiple_of(stride) {
                self.assert_invariants();
            }
        }
    }

    fn take_sample(&mut self) {
        let cumulative = Sample {
            cycle: self.cycle,
            insts: self.stats.committed_instructions,
            mispredicts: self.stats.mispredictions,
            squashed: self.stats.squashed_instructions,
            grants: self.grants_total,
            l1_misses: self.hier.l1.misses(),
            squash_slots: self.account.get(Category::SquashBranch),
        };
        let delta = self.sampler.record(cumulative);
        self.tracer.emit(TraceEvent::Sample(delta));
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    /// Commits up to `commit_width` instructions and reports the cycle's
    /// slot attribution: how many slots retired an instruction, and the
    /// [`Category`] the remaining idle slots are blamed on.
    fn do_commit(&mut self) -> (u64, Category) {
        let mut committed: u64 = 0;
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.head() else {
                // The ROB ran dry: a recently squashed pipeline is still
                // refilling (blame the flush), otherwise the frontend
                // simply had not delivered.
                let blame = match self.refill_blame {
                    Some((FlushKind::BranchMispredict, _)) => Category::SquashBranch,
                    Some((FlushKind::MemoryOrder, _)) => Category::MemStall,
                    Some((FlushKind::ReuseVerification, _)) => Category::ReuseVerify,
                    None => Category::FrontendEmpty,
                };
                return (committed, blame);
            };
            if !head.completed || head.verify_pending {
                let blame = if head.verify_pending {
                    Category::ReuseVerify
                } else if head.fwd_stalled {
                    Category::StoreForwardPending
                } else if head.inst.is_load() || head.inst.is_store() {
                    Category::MemStall
                } else {
                    Category::BackendPressure
                };
                return (committed, blame);
            }
            #[cfg(debug_assertions)]
            if let Some(v) = check::check_commit_entry(head.seq, head.reused, head.verify_pending) {
                panic!("invariant violation at cycle {}: {v}", self.cycle);
            }
            let e = self.rob.pop_head().expect("head exists");
            // The first commit from the post-squash stream ends the
            // refill window.
            if self.refill_blame.is_some_and(|(_, boundary)| e.seq >= boundary) {
                self.refill_blame = None;
            }
            committed += 1;
            self.stats.committed_instructions += 1;
            if self.tracer.on() {
                self.tracer.emit(TraceEvent::Commit { cycle: self.cycle, seq: e.seq, pc: e.pc });
            }
            if e.inst.is_halt() {
                self.halted = true;
                return (committed, Category::Base);
            }
            if e.inst.is_store() {
                let (addr, data) = self.lsq.commit_store(e.seq);
                self.hier.access(addr);
                self.memory.write_u64(addr, data);
                self.stats.committed_stores += 1;
            }
            if e.inst.is_load() {
                self.lsq.commit_load(e.seq);
                self.stats.committed_loads += 1;
            }
            if let Some(b) = e.branch {
                self.stats.committed_branches += 1;
                let o = b.resolved.expect("committed branch is resolved");
                if e.inst.is_cond_branch() {
                    self.stats.committed_cond_branches += 1;
                    self.bpred.train_cond(e.pc, o.taken, b.meta);
                }
            }
            if let Some(d) = e.dst {
                self.release_preg(d.prev_preg);
            }
            self.engine.on_commit(1, &mut ectx!(self));
            if self.stats.committed_instructions >= self.cfg.max_insts {
                self.halted = true;
                return (committed, Category::Base);
            }
        }
        // A full-width commit has no idle slots; the blame is unused.
        (committed, Category::Base)
    }

    // ------------------------------------------------------------------
    // Writeback
    // ------------------------------------------------------------------

    fn do_writeback(&mut self) {
        while let Some(&Reverse((c, s))) = self.completions.peek() {
            if c > self.cycle {
                break;
            }
            self.completions.pop();
            let seq = SeqNum::new(s);
            // Squashed instructions have left the ROB; drop the event.
            let Some(e) = self.rob.get(seq) else { continue };

            // Reused-load verification completion (paper §3.8.3): compare
            // the re-executed value with the reused one.
            if e.reused && e.verify_pending && e.inst.is_load() {
                let fresh = e.pending_value.expect("verification executed");
                let reused = self.prf.read(e.dst.expect("loads have destinations").new_preg);
                if fresh == reused {
                    self.rob.get_mut(seq).expect("entry exists").verify_pending = false;
                } else {
                    let pc = e.pc;
                    self.pending_flushes.push(PendingFlush {
                        first_squashed: seq,
                        redirect: pc,
                        kind: FlushKind::ReuseVerification,
                        cause_seq: seq,
                        cause_pc: pc,
                    });
                }
                continue;
            }

            let e = self.rob.get_mut(seq).expect("entry exists");
            if e.completed {
                continue;
            }
            e.completed = true;
            let dst = e.dst;
            let value = e.pending_value;
            let branch = e.branch;
            let pc = e.pc;
            let op = e.inst.op();
            if self.tracer.on() {
                self.tracer.emit(TraceEvent::Writeback {
                    cycle: self.cycle,
                    seq,
                    value: value.unwrap_or(0),
                });
            }
            if let Some(d) = dst {
                self.prf.write(d.new_preg, value.unwrap_or(0));
                self.iq_int.wake(d.new_preg);
                self.iq_mem.wake(d.new_preg);
            }
            if let Some(b) = branch {
                let o = b.resolved.expect("executed branch has an outcome");
                if op == Opcode::Jalr {
                    self.bpred.update_indirect(pc, o.next);
                }
                if o.next != b.pred_next {
                    self.pending_flushes.push(PendingFlush {
                        first_squashed: seq.next(),
                        redirect: o.next,
                        kind: FlushKind::BranchMispredict,
                        cause_seq: seq,
                        cause_pc: pc,
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn do_issue(&mut self) {
        let alu = self.iq_int.select(FuClass::Alu, self.cfg.alu_units);
        let bru = self.iq_int.select(FuClass::Bru, self.cfg.bru_units);
        let mem = self.iq_mem.select(FuClass::Lsu, self.cfg.lsu_units);
        if self.tracer.on() {
            for (list, fu) in [(&alu, FuClass::Alu), (&bru, FuClass::Bru), (&mem, FuClass::Lsu)] {
                for &seq in list {
                    self.tracer.emit(TraceEvent::Issue { cycle: self.cycle, seq, fu });
                }
            }
        }
        for seq in alu {
            self.exec_alu(seq);
        }
        for seq in bru {
            self.exec_bru(seq);
        }
        for seq in mem {
            self.exec_mem(seq);
        }
    }

    fn src_vals(&self, e: &RobEntry) -> (u64, u64) {
        let a = e.src_pregs[0].map_or(0, |p| self.prf.read(p));
        let b = e.src_pregs[1].map_or(0, |p| self.prf.read(p));
        (a, b)
    }

    fn exec_alu(&mut self, seq: SeqNum) {
        let e = self.rob.get(seq).expect("issued instruction is in the ROB");
        let (a, b) = self.src_vals(e);
        let op = e.inst.op();
        let v = exec::alu(op, a, b, e.inst.imm()).unwrap_or(0);
        let lat = match op {
            Opcode::Mul => self.cfg.mul_latency,
            Opcode::Div | Opcode::Rem => self.cfg.div_latency,
            _ => 1,
        };
        self.rob.get_mut(seq).expect("entry exists").pending_value = Some(v);
        self.completions.push(Reverse((self.cycle + lat, seq.value())));
    }

    fn exec_bru(&mut self, seq: SeqNum) {
        let e = self.rob.get(seq).expect("issued instruction is in the ROB");
        let (a, b) = self.src_vals(e);
        let op = e.inst.op();
        let pc = e.pc;
        let outcome = if op.is_cond_branch() {
            let taken = exec::branch_taken(op, a, b);
            BranchOutcome {
                taken,
                next: if taken { e.inst.target().expect("branch has target") } else { pc.next() },
            }
        } else if op == Opcode::Jal {
            BranchOutcome { taken: true, next: e.inst.target().expect("jal has target") }
        } else {
            // Jalr: target from register.
            BranchOutcome { taken: true, next: Pc::new(a.wrapping_add(e.inst.imm() as u64)) }
        };
        let link = pc.next().addr();
        let e = self.rob.get_mut(seq).expect("entry exists");
        if e.dst.is_some() {
            e.pending_value = Some(link);
        }
        e.branch.as_mut().expect("control instruction has branch state").resolved = Some(outcome);
        self.completions.push(Reverse((self.cycle + 1, seq.value())));
    }

    fn exec_mem(&mut self, seq: SeqNum) {
        let e = self.rob.get(seq).expect("issued instruction is in the ROB");
        let (base, data) = self.src_vals(e);
        let inst = e.inst;
        let addr = self.memory.wrap(exec::mem_addr(&inst, base));
        if inst.is_load() {
            let verify = e.reused && e.verify_pending;
            let (value, lat) = match self.lsq.forward(seq, addr) {
                Forward::Data(v) => {
                    self.stats.store_forwards += 1;
                    (v, self.cfg.forward_latency)
                }
                Forward::Pending => {
                    // The forwarding source knows its address but not yet
                    // its data: reading memory now would return the
                    // pre-store value. Requeue the load (ready — it was
                    // just selected) and retry next cycle.
                    self.stats.store_forward_stalls += 1;
                    self.rob.get_mut(seq).expect("entry exists").fwd_stalled = true;
                    self.iq_mem.insert(seq, FuClass::Lsu, Vec::new());
                    return;
                }
                Forward::Miss => (self.memory.read_u64(addr), self.hier.access(addr)),
            };
            if !verify {
                let lq = self.lsq.load_mut(seq).expect("dispatched load is in the LQ");
                lq.addr = Some(addr);
                lq.issued = true;
                lq.value = Some(value);
            } else if let Some(lq) = self.lsq.load_mut(seq) {
                // Verification re-executions refresh the recorded address.
                lq.addr = Some(addr);
            }
            let e = self.rob.get_mut(seq).expect("entry exists");
            e.pending_value = Some(value);
            e.mem_addr = Some(addr);
            e.fwd_stalled = false;
            self.completions.push(Reverse((self.cycle + lat, seq.value())));
        } else {
            // Store: address and data become known together.
            let sq = self.lsq.store_mut(seq).expect("dispatched store is in the SQ");
            sq.addr = Some(addr);
            sq.data = Some(data);
            self.rob.get_mut(seq).expect("entry exists").mem_addr = Some(addr);
            // Store-to-load ordering check (§3.8.1).
            if let Some(lseq) = self.lsq.store_check(seq, addr) {
                let lpc = self.rob.get(lseq).expect("violating load is in the ROB").pc;
                self.pending_flushes.push(PendingFlush {
                    first_squashed: lseq,
                    redirect: lpc,
                    kind: FlushKind::MemoryOrder,
                    cause_seq: lseq,
                    cause_pc: lpc,
                });
            }
            self.engine.on_store_executed(addr, &mut ectx!(self));
            self.completions.push(Reverse((self.cycle + 1, seq.value())));
        }
    }

    // ------------------------------------------------------------------
    // Rename / dispatch
    // ------------------------------------------------------------------

    fn alloc_rgid(&mut self, a: ArchReg) -> Rgid {
        let g = self.rgids.next(a);
        if g.is_null() {
            self.rgid_overflows_total += 1;
            self.engine.on_rgid_overflow(&mut ectx!(self));
        }
        g
    }

    fn do_rename(&mut self) {
        for _ in 0..self.cfg.rename_width {
            let Some(front) = self.frontend_q.front() else { break };
            if front.ready_cycle > self.cycle || !self.rob.has_space() {
                break;
            }
            let inst = front.inst;
            // Structural checks before consuming the instruction.
            let fu = fu_class(inst.op());
            let iq_ok = match fu {
                Some(FuClass::Lsu) => self.iq_mem.has_space(),
                Some(_) => self.iq_int.has_space(),
                None => true,
            };
            let lsq_ok = (!inst.is_load() || self.lsq.lq_has_space())
                && (!inst.is_store() || self.lsq.sq_has_space());
            if !iq_ok || !lsq_ok {
                break;
            }
            if inst.writes_reg() && self.free_list.available() == 0 {
                self.engine.on_register_pressure(&mut ectx!(self));
                if self.free_list.available() == 0 {
                    break;
                }
            }

            let fi = self.frontend_q.pop_front().expect("front exists");
            let seq = SeqNum::new(self.next_seq);
            self.next_seq += 1;
            self.stats.renamed_instructions += 1;

            // Source lookup; `x0` and absent operands carry no integrity tag.
            let mut src_pregs = [None, None];
            let mut src_rgids = [None, None];
            for (i, s) in inst.sources().iter().enumerate() {
                if let Some(a) = s {
                    if !a.is_zero() {
                        // Lazily revive mappings whose RGID was nulled by a
                        // global reset: long-lived registers (loop-invariant
                        // constants, stack pointers) would otherwise stay
                        // unreusable forever.
                        if self.rat.rgid(*a).is_null() {
                            let g = self.alloc_rgid(*a);
                            if !g.is_null() {
                                self.rat.retag(*a, g);
                            }
                        }
                        src_pregs[i] = Some(self.rat.lookup(*a));
                        src_rgids[i] = Some(self.rat.rgid(*a));
                    }
                }
            }

            // Reuse test (paper §3.5): only value-producing, non-control,
            // non-store instructions are candidates.
            let eligible = inst.writes_reg() && !inst.is_control();
            let grant = if eligible {
                let q = ReuseQuery { seq, pc: fi.pc, inst: &inst, src_rgids, src_pregs };
                self.engine.try_reuse(&q, &mut ectx!(self))
            } else {
                None
            };

            let mut dst_info = None;
            let mut completed = false;
            let mut reused = false;
            let mut verify_pending = false;

            if let Some(g) = grant {
                // Credit the execution latency this grant skipped to the
                // account (clamped there against the accrued
                // squash-penalty slots); the engine can discount it, e.g.
                // verified loads re-execute and recover nothing.
                let estimate = match inst.op() {
                    Opcode::Mul => self.cfg.mul_latency,
                    Opcode::Div | Opcode::Rem => self.cfg.div_latency,
                    Opcode::Ld => self.cfg.l1d.latency,
                    _ => 1,
                };
                let credit = self.engine.reuse_credit_latency(inst.op(), estimate);
                self.account.credit_reuse(credit);
                if g.rgid.is_some() {
                    // The grant forwarded a reconvergence stream: a
                    // fast-path fetch in the paper's terms.
                    self.account.credit_recon_fetches += 1;
                }
                self.grants_total += 1;
                if paranoid_enabled() && !inst.is_load() {
                    // Debug oracle: a sound ALU grant implies the granted
                    // register holds exactly what re-executing the
                    // instruction on its current (RGID-matched) sources
                    // would produce.
                    let a = src_pregs[0].map_or(0, |p| self.prf.read(p));
                    let b = src_pregs[1].map_or(0, |p| self.prf.read(p));
                    if let Some(fresh) = exec::alu(inst.op(), a, b, inst.imm()) {
                        let got = self.prf.read(g.preg);
                        if fresh != got {
                            eprintln!(
                                "PARANOID-ALU cycle={} seq={} pc={} op={} granted={} fresh={} srcs={:?} gens={:?} dst={}",
                                self.cycle,
                                seq,
                                fi.pc,
                                inst.op(),
                                got,
                                fresh,
                                src_pregs,
                                src_rgids,
                                g.preg
                            );
                        }
                    }
                }
                let arch = inst.dst().expect("granted instruction writes a register");
                let rgid = match g.rgid {
                    Some(r) => r,
                    None => self.alloc_rgid(arch),
                };
                let (prev_preg, prev_rgid) = self.rat.install(arch, g.preg, rgid);
                self.prf.set_ready(g.preg);
                dst_info =
                    Some(DstInfo { arch, new_preg: g.preg, prev_preg, new_rgid: rgid, prev_rgid });
                completed = true;
                reused = true;
                if inst.is_load() {
                    if paranoid_enabled() {
                        // Debug oracle: the reused value should match what
                        // the load would read right now (unless an older
                        // store with an unknown address is still in
                        // flight, which store_check later covers).
                        if let Some(addr) = g.load_addr {
                            let fresh = match self.lsq.forward(seq, addr) {
                                Forward::Data(v) => v,
                                // Pending data counts as unknown; fall back
                                // to memory like the pre-Forward oracle did.
                                _ => self.memory.read_u64(addr),
                            };
                            let got = self.prf.read(g.preg);
                            if fresh != got {
                                eprintln!(
                                    "PARANOID cycle={} seq={} pc={} addr={:#x} reused={} fresh={}",
                                    self.cycle, seq, fi.pc, addr, got, fresh
                                );
                            }
                        }
                    }
                    self.lsq.push_load(LqEntry {
                        seq,
                        addr: g.load_addr,
                        issued: true,
                        value: Some(self.prf.read(g.preg)),
                        reused: true,
                    });
                    if g.needs_load_verify {
                        verify_pending = true;
                        // Re-execute for verification; sources are ready
                        // (the squashed instance executed with the same
                        // mappings), so it waits only for LSU bandwidth.
                        self.iq_mem.insert(seq, FuClass::Lsu, Vec::new());
                    }
                }
            } else {
                if let Some(arch) = inst.dst() {
                    let preg = self.free_list.alloc().expect("availability checked above");
                    let rgid = self.alloc_rgid(arch);
                    let (prev_preg, prev_rgid) = self.rat.install(arch, preg, rgid);
                    self.prf.clear_ready(preg);
                    dst_info = Some(DstInfo {
                        arch,
                        new_preg: preg,
                        prev_preg,
                        new_rgid: rgid,
                        prev_rgid,
                    });
                }
                match fu {
                    None => completed = true, // nop / halt: nothing to execute
                    Some(c) => {
                        let waiting: Vec<PhysReg> = src_pregs
                            .iter()
                            .flatten()
                            .copied()
                            .filter(|&p| !self.prf.is_ready(p))
                            .collect();
                        if inst.is_load() {
                            self.lsq.push_load(LqEntry {
                                seq,
                                addr: None,
                                issued: false,
                                value: None,
                                reused: false,
                            });
                        }
                        if inst.is_store() {
                            self.lsq.push_store(SqEntry { seq, addr: None, data: None });
                        }
                        match c {
                            FuClass::Lsu => self.iq_mem.insert(seq, c, waiting),
                            _ => self.iq_int.insert(seq, c, waiting),
                        }
                    }
                }
            }

            let branch = inst.is_control().then_some(BranchState {
                pred_next: fi.pred_next,
                pred_taken: fi.pred_taken,
                meta: fi.meta,
                resolved: None,
            });

            self.rob.push(RobEntry {
                seq,
                pc: fi.pc,
                inst,
                dst: dst_info,
                src_pregs,
                src_rgids,
                completed,
                reused,
                verify_pending,
                fwd_stalled: false,
                pending_value: None,
                branch,
                mem_addr: None,
                ghr_before: fi.ghr_before,
                ras_sp_before: fi.ras_sp_before,
            });

            if self.tracer.on() {
                self.tracer.emit(TraceEvent::Rename { cycle: self.cycle, seq, pc: fi.pc });
                if reused {
                    self.tracer.emit(TraceEvent::ReuseGrant {
                        cycle: self.cycle,
                        seq,
                        pc: fi.pc,
                        verify: verify_pending,
                    });
                }
            }

            let r = RenamedInst {
                seq,
                pc: fi.pc,
                op: inst.op(),
                dst: dst_info.map(|d| (d.arch, d.new_preg, d.new_rgid)),
                reused,
            };
            self.engine.on_renamed(&r, &mut ectx!(self));
        }
    }

    // ------------------------------------------------------------------
    // Fetch / predict
    // ------------------------------------------------------------------

    fn do_fetch(&mut self) {
        // One or more prediction blocks per cycle (§3.9.1's
        // multiple-block-fetching extension duplicates the reconvergence
        // detection per block — `on_block` fires once per block).
        for _ in 0..self.cfg.fetch_blocks_per_cycle {
            self.fetch_one_block();
        }
    }

    fn fetch_one_block(&mut self) {
        if self.cycle < self.fetch_resume_at {
            return;
        }
        let Some(mut pc) = self.fetch_pc else { return };
        // Backpressure: bound the in-flight frontend window.
        if self.frontend_q.len() >= self.cfg.ftq_size * self.cfg.fetch_block_insts {
            return;
        }
        let start = pc;
        let mut last_pc = pc;
        let ready_cycle = self.cycle + self.cfg.frontend_stages - 1;
        let mut count = 0usize;
        let mut next_fetch_pc;
        loop {
            let Some(&inst) = self.program.fetch(pc) else {
                // Wandered outside the program (wrong path): idle until a
                // redirect arrives.
                next_fetch_pc = None;
                break;
            };
            let ghr_before = self.bpred.ghr();
            let ras_sp_before = self.bpred.ras_sp();
            let (pred_taken, pred_next, meta) = match inst.op() {
                op if op.is_cond_branch() => {
                    let (taken, meta) = self.bpred.predict_cond(pc);
                    let next =
                        if taken { inst.target().expect("branch has target") } else { pc.next() };
                    (taken, next, meta)
                }
                Opcode::Jal => (true, inst.target().expect("jal has target"), PredMeta::default()),
                Opcode::Jalr => {
                    let t = if inst.is_return() {
                        self.bpred
                            .ras_pop()
                            .or_else(|| self.bpred.predict_indirect(pc))
                            .unwrap_or_else(|| pc.next())
                    } else {
                        self.bpred.predict_indirect(pc).unwrap_or_else(|| pc.next())
                    };
                    (true, t, PredMeta::default())
                }
                _ => (false, pc.next(), PredMeta::default()),
            };
            if inst.is_call() {
                self.bpred.ras_push(pc.next());
            }
            self.frontend_q.push_back(FrontInst {
                ready_cycle,
                pc,
                inst,
                pred_taken,
                pred_next,
                meta,
                ghr_before,
                ras_sp_before,
            });
            count += 1;
            last_pc = pc;
            if inst.is_halt() {
                // Stop predicting past the end of the program.
                next_fetch_pc = None;
                break;
            }
            pc = pred_next;
            next_fetch_pc = Some(pc);
            if pred_taken || count >= self.cfg.fetch_block_insts {
                break;
            }
        }
        self.fetch_pc = next_fetch_pc;
        if count > 0 {
            if self.tracer.on() {
                self.tracer.emit(TraceEvent::Fetch {
                    cycle: self.cycle,
                    start,
                    end: last_pc,
                    insts: count as u32,
                });
            }
            let blk = PredBlock { range: BlockRange { start, end: last_pc }, cycle: self.cycle };
            self.engine.on_block(&blk, &mut ectx!(self));
        }
    }

    // ------------------------------------------------------------------
    // Flush handling
    // ------------------------------------------------------------------

    fn handle_flushes(&mut self) {
        if self.pending_flushes.is_empty() {
            return;
        }
        // A flush can go stale if its anchor instruction left the ROB
        // before this point — e.g. an externally injected snoop replay
        // whose load committed in the same window. Stale flushes are
        // dropped; among the live ones the oldest wins.
        let f = self
            .pending_flushes
            .iter()
            .filter(|f| match f.kind {
                // The mispredicted branch itself survives its squash and
                // is always still in flight within the discovery cycle.
                FlushKind::BranchMispredict => self.rob.get(f.cause_seq).is_some(),
                // Replay flushes anchor at the squashed instruction.
                _ => self.rob.get(f.first_squashed).is_some(),
            })
            .min_by_key(|f| f.first_squashed)
            .copied();
        // Any younger pending flush lies inside the squashed region of the
        // oldest one — its cause was wrong-path work.
        self.pending_flushes.clear();
        if let Some(f) = f {
            self.do_squash(f);
        }
    }

    fn do_squash(&mut self, f: PendingFlush) {
        match f.kind {
            FlushKind::BranchMispredict => {
                self.stats.flushes_branch += 1;
                self.stats.mispredictions += 1;
            }
            FlushKind::MemoryOrder => self.stats.flushes_mem_order += 1,
            FlushKind::ReuseVerification => self.stats.flushes_reuse_verify += 1,
        }

        // Gather the PC ranges of instructions still in the frontend;
        // they extend the squashed stream beyond the ROB.
        let frontend_blocks = group_blocks(
            self.frontend_q.iter().map(|fi| (fi.pc, fi.pred_taken)),
            self.cfg.fetch_block_insts,
        );

        // Restore the speculative global history and return-address stack.
        match f.kind {
            FlushKind::BranchMispredict => {
                let br = self.rob.get(f.cause_seq).expect("mispredicted branch is live");
                let b = br.branch.expect("branch state");
                let o = b.resolved.expect("resolved");
                let (is_cond, meta, ghr_before) = (br.inst.is_cond_branch(), b.meta, br.ghr_before);
                let (ras_sp, is_call, is_ret, ret_pc) =
                    (br.ras_sp_before, br.inst.is_call(), br.inst.is_return(), br.pc.next());
                if is_cond {
                    self.bpred.recover_cond(meta, o.taken);
                } else {
                    self.bpred.restore_ghr(ghr_before);
                }
                // The mispredicted instruction itself survives; re-apply
                // its own RAS effect on top of the restored counter.
                self.bpred.restore_ras_sp(ras_sp);
                if is_call {
                    self.bpred.ras_push(ret_pc);
                } else if is_ret {
                    let _ = self.bpred.ras_pop();
                }
            }
            _ => {
                let e = self.rob.get(f.first_squashed).expect("flushed instruction is live");
                self.bpred.restore_ghr(e.ghr_before);
                self.bpred.restore_ras_sp(e.ras_sp_before);
            }
        }
        self.frontend_q.clear();

        // Unwind the ROB tail, restoring the RAT youngest-first.
        let squashed = self.rob.squash_from(f.first_squashed);
        if self.tracer.on() {
            self.tracer.emit(TraceEvent::Squash {
                cycle: self.cycle,
                kind: f.kind,
                first: f.first_squashed,
                count: squashed.len() as u64,
                redirect: f.redirect,
            });
        }
        for e in &squashed {
            if let Some(d) = e.dst {
                self.rat.restore(d.arch, d.prev_preg, d.prev_rgid);
            }
        }
        self.iq_int.squash_from(f.first_squashed);
        self.iq_mem.squash_from(f.first_squashed);
        self.lsq.squash_from(f.first_squashed);
        self.stats.squashed_instructions += squashed.len() as u64;

        // Instructions in flight at the squash (issued, writeback pending)
        // have already computed their results; in hardware the writeback
        // drains into the physical register file even though the
        // instruction is squashed. Let those values land so reuse engines
        // can recycle them (their completion events are dropped later).
        //
        // Exception: a reused load's in-flight *verification* re-execution
        // must never drain. Its destination register already holds the
        // reused value under a forwarded RGID generation; overwriting it
        // with the freshly read value would change a register's contents
        // without a rename, breaking the generation ⇒ value invariant
        // that every downstream reuse test depends on.
        if self.cfg.drain_inflight_on_squash {
            for e in &squashed {
                #[allow(clippy::nonminimal_bool)] // spells out the two exclusions separately
                if !e.completed && !(e.reused && e.verify_pending) {
                    if let (Some(d), Some(v)) = (e.dst, e.pending_value) {
                        self.prf.write(d.new_preg, v);
                    }
                }
            }
        }

        // Hand the squashed stream to the engine (oldest first) before
        // releasing any destination registers, so it can retain them.
        if f.kind == FlushKind::BranchMispredict {
            self.squash_ctr += 1;
            let insts: Vec<SquashedInst> = squashed
                .iter()
                .rev()
                .map(|e| SquashedInst {
                    seq: e.seq,
                    pc: e.pc,
                    op: e.inst.op(),
                    dst: e.dst.map(|d| (d.arch, d.new_preg, d.new_rgid)),
                    src_rgids: e.src_rgids,
                    src_pregs: e.src_pregs,
                    // Completed, or in flight with the result draining into
                    // the PRF — but never an unverified reused load.
                    executed: (e.completed
                        || (self.cfg.drain_inflight_on_squash && e.pending_value.is_some()))
                        && !(e.reused && e.verify_pending),
                    is_load: e.inst.is_load(),
                    is_store: e.inst.is_store(),
                    load_addr: if e.inst.is_load() { e.mem_addr } else { None },
                })
                .collect();
            let ev = SquashEvent {
                squash_id: self.squash_ctr,
                cause_seq: f.cause_seq,
                cause_pc: f.cause_pc,
                redirect: f.redirect,
                insts,
                frontend_blocks,
            };
            self.engine.on_mispredict_squash(&ev, &mut ectx!(self));
        } else {
            self.engine.on_flush(f.kind, &mut ectx!(self));
        }

        // Release the live holds of squashed destination mappings; the
        // engine's retains keep reusable values alive.
        for e in &squashed {
            if let Some(d) = e.dst {
                self.release_preg(d.new_preg);
            }
        }

        // Redirect the frontend. Until an instruction of the refilled
        // stream (seq >= the current rename boundary) commits, idle-ROB
        // cycles are the squash's penalty and are blamed on its kind.
        self.refill_blame = Some((f.kind, SeqNum::new(self.next_seq)));
        self.fetch_pc = Some(f.redirect);
        self.fetch_resume_at = self.cycle + 1;
        // A squash is the operation that rearranges register ownership;
        // sweep thoroughly (free-list integrity included) after every
        // one, independent of the per-cycle stride.
        #[cfg(debug_assertions)]
        self.assert_invariants_thorough();
    }

    /// Sweeps the full machine state against every [`Rule`], returning
    /// all violations found (empty for a healthy pipeline).
    ///
    /// Debug builds run this every cycle (see `MSSR_CHECK_STRIDE` on
    /// [`check::check_stride`]) and after every squash, panicking on the
    /// first violation; the sweep itself is available in every build for
    /// tests and tools.
    pub fn invariant_violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();

        // Free-list internal integrity, then the per-mapping hold checks
        // (a mapped or in-flight register must never be allocatable).
        if let Err(detail) = self.free_list.validate() {
            out.push(Violation { rule: Rule::FreeListIntegrity, detail });
        }
        for a in ArchReg::all() {
            let p = self.rat.lookup(a);
            if self.free_list.holds(p) == 0 {
                out.push(Violation {
                    rule: Rule::FreeListIntegrity,
                    detail: format!("RAT maps {a} to {p} which has no holds"),
                });
            }
        }
        for e in self.rob.iter() {
            if let Some(d) = e.dst {
                for (what, p) in [("destination", d.new_preg), ("rollback target", d.prev_preg)] {
                    if self.free_list.holds(p) == 0 {
                        out.push(Violation {
                            rule: Rule::FreeListIntegrity,
                            detail: format!("ROB {} has {what} {p} with no holds", e.seq),
                        });
                    }
                }
            }
        }

        // Hold conservation: every hold belongs to a live mapping (RAT
        // target, in-flight ROB destination, or rollback target — as a
        // *set*: each live register carries exactly one pipeline hold) or
        // to the engine's reservations.
        let mut live = vec![false; self.free_list.num_regs()];
        for a in ArchReg::all() {
            live[self.rat.lookup(a).index()] = true;
        }
        for e in self.rob.iter() {
            if let Some(d) = e.dst {
                live[d.new_preg.index()] = true;
                live[d.prev_preg.index()] = true;
            }
        }
        let live_mappings = live.iter().filter(|&&l| l).count() as u64;
        if let Some(v) = check::check_conservation(
            self.free_list.total_holds(),
            live_mappings,
            self.engine.reserved_hold_count(),
        ) {
            out.push(v);
        }

        if let Some(v) =
            check::check_age_order(Rule::RobAgeOrder, "ROB", self.rob.iter().map(|e| e.seq))
        {
            out.push(v);
        }
        if let Some(v) = check::check_rgids(
            self.rgids.counters(),
            self.rob.iter().filter_map(|e| e.dst.map(|d| (d.arch.index(), d.new_rgid, e.reused))),
        ) {
            out.push(v);
        }
        if let Some(v) = check::check_reuse_safety(
            self.rob
                .iter()
                .map(|e| (e.seq, e.inst.is_store(), e.inst.is_load(), e.reused, e.verify_pending)),
        ) {
            out.push(v);
        }
        if let Some(v) = check::check_lsq(self.lsq.loads(), self.lsq.stores()) {
            out.push(v);
        }
        // The account accrues immediately before the cycle counter
        // increments, so the law holds exactly at every sweep point: the
        // per-cycle sweep (after the increment) and the post-squash
        // thorough sweep (mid-cycle, before this cycle's accrual).
        if let Some(v) =
            check::check_cpi_account(&self.account, self.cycle, self.cfg.commit_width as u64)
        {
            out.push(v);
        }
        out
    }

    /// One fused, allocation-light pass over the machine state checking
    /// the same invariants as [`Simulator::invariant_violations`] minus
    /// the free list's internal-integrity scan (covered by the thorough
    /// sweep after every squash). This is the per-cycle debug-build hot
    /// path: it only answers clean/dirty; diagnosis is re-derived by the
    /// rule functions when it reports dirty. Kept semantically a subset
    /// of the thorough sweep — `assert_invariants` enforces that.
    #[cfg(debug_assertions)]
    fn sweep_is_clean(&self) -> bool {
        let fl = &self.free_list;
        let mut live = vec![false; fl.num_regs()];
        let mut live_count: u64 = 0;
        for a in ArchReg::all() {
            let p = self.rat.lookup(a);
            if fl.holds(p) == 0 {
                return false;
            }
            if !live[p.index()] {
                live[p.index()] = true;
                live_count += 1;
            }
        }
        let counters = self.rgids.counters();
        let mut prev: Option<SeqNum> = None;
        let mut last: [Option<u16>; mssr_isa::NUM_ARCH_REGS] = [None; mssr_isa::NUM_ARCH_REGS];
        for e in self.rob.iter() {
            if prev.is_some_and(|p| e.seq <= p) {
                return false;
            }
            prev = Some(e.seq);
            if e.inst.is_store() && e.reused {
                return false;
            }
            if e.verify_pending && !(e.reused && e.inst.is_load()) {
                return false;
            }
            if let Some(d) = e.dst {
                for p in [d.new_preg, d.prev_preg] {
                    if fl.holds(p) == 0 {
                        return false;
                    }
                    if !live[p.index()] {
                        live[p.index()] = true;
                        live_count += 1;
                    }
                }
                let g = d.new_rgid;
                if !g.is_null() {
                    let a = d.arch.index();
                    if g.value() > counters[a] {
                        return false;
                    }
                    if !e.reused {
                        if last[a].is_some_and(|prev| g.value() <= prev) {
                            return false;
                        }
                        last[a] = Some(g.value());
                    }
                }
            }
        }
        fl.total_holds() == live_count + self.engine.reserved_hold_count()
            && check::check_lsq(self.lsq.loads(), self.lsq.stores()).is_none()
            && check::check_cpi_account(&self.account, self.cycle, self.cfg.commit_width as u64)
                .is_none()
    }

    /// Panics on the first invariant violation (debug-build backstop).
    /// The fused sweep screens; the rule functions produce the report.
    #[cfg(debug_assertions)]
    fn assert_invariants(&self) {
        if self.sweep_is_clean() {
            return;
        }
        self.assert_invariants_thorough();
        panic!(
            "invariant sweep flagged cycle {} but the thorough check found nothing \
             (fast/thorough sweep divergence — this is a checker bug)",
            self.cycle
        );
    }

    /// The thorough variant: full rule-function sweep including free-list
    /// internal integrity. Run after every squash and on demand.
    #[cfg(debug_assertions)]
    fn assert_invariants_thorough(&self) {
        if let Some(v) = self.invariant_violations().first() {
            panic!("invariant violation at cycle {}: {v}", self.cycle);
        }
    }

    fn release_preg(&mut self, p: PhysReg) {
        self.free_list.release(p);
        if self.free_list.holds(p) == 0 {
            self.engine.on_preg_freed(p, &mut ectx!(self));
        }
    }

    fn apply_rgid_reset(&mut self) {
        if !self.rgid_reset_requested {
            return;
        }
        self.rgid_reset_requested = false;
        self.rgid_resets_total += 1;
        self.rgids.reset();
        // Null every live RGID so pre-reset generations can never alias
        // post-reset ones (RAT, plus ROB fields used for rollback and
        // Squash Log population).
        self.rat.null_all_rgids();
        for e in self.rob.iter_mut() {
            for g in e.src_rgids.iter_mut().flatten() {
                *g = Rgid::NULL;
            }
            if let Some(d) = &mut e.dst {
                d.new_rgid = Rgid::NULL;
                d.prev_rgid = Rgid::NULL;
            }
        }
        // The engine must drop every captured generation from the old
        // window — including streams captured *after* it requested the
        // reset, earlier in this same cycle (e.g. a squash between the
        // overflow and the end of the cycle).
        self.engine.on_rgid_reset(&mut ectx!(self));
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore / functional fast-forward
    // ------------------------------------------------------------------

    /// Read access to the branch predictor (warmup-fidelity inspection).
    pub fn bpred(&self) -> &BranchPredictor {
        &self.bpred
    }

    /// Read access to the cache hierarchy (warmup-fidelity inspection).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// A stable identity hash of the loaded program (base address plus
    /// every instruction), used to reject checkpoints taken of a
    /// different program. In-flight instructions are checkpointed by PC
    /// only and re-fetched through this guard.
    fn program_hash(program: &Program) -> u64 {
        let mut text = program.base().addr().to_string();
        for (pc, inst) in program.iter() {
            text.push_str(&format!("|{}:{inst:?}", pc.addr()));
        }
        ckpt::fnv1a64(text.as_bytes())
    }

    /// A stable identity hash of the simulator configuration. Structure
    /// sizes (ROB, queues, caches) shape the serialized state, so a
    /// checkpoint only restores under the exact configuration that took
    /// it; the `Debug` rendering covers every field.
    fn config_hash(cfg: &SimConfig) -> u64 {
        ckpt::fnv1a64(format!("{cfg:?}").as_bytes())
    }

    fn save_rob_entry(w: &mut CkptWriter, e: &RobEntry) {
        w.seq(e.seq);
        w.pc(e.pc);
        match e.dst {
            None => w.bool(false),
            Some(d) => {
                w.bool(true);
                w.u8(d.arch.index() as u8);
                w.preg(d.new_preg);
                w.preg(d.prev_preg);
                w.rgid(d.new_rgid);
                w.rgid(d.prev_rgid);
            }
        }
        for p in e.src_pregs {
            w.opt_preg(p);
        }
        for g in e.src_rgids {
            w.opt_rgid(g);
        }
        w.bool(e.completed);
        w.bool(e.reused);
        w.bool(e.verify_pending);
        w.bool(e.fwd_stalled);
        w.opt_u64(e.pending_value);
        match e.branch {
            None => w.bool(false),
            Some(b) => {
                w.bool(true);
                w.pc(b.pred_next);
                w.bool(b.pred_taken);
                w.u64(b.meta.ghr_before);
                match b.resolved {
                    None => w.bool(false),
                    Some(o) => {
                        w.bool(true);
                        w.bool(o.taken);
                        w.pc(o.next);
                    }
                }
            }
        }
        w.opt_u64(e.mem_addr);
        w.u64(e.ghr_before);
        w.u64(e.ras_sp_before);
    }

    fn load_rob_entry(r: &mut CkptReader, program: &Program) -> Result<RobEntry, CkptError> {
        let seq = r.seq()?;
        let pc = r.pc()?;
        let inst = Self::refetch(program, pc)?;
        let dst = if r.bool()? {
            Some(DstInfo {
                arch: load_arch_reg(r)?,
                new_preg: r.preg()?,
                prev_preg: r.preg()?,
                new_rgid: r.rgid()?,
                prev_rgid: r.rgid()?,
            })
        } else {
            None
        };
        let src_pregs = [r.opt_preg()?, r.opt_preg()?];
        let src_rgids = [r.opt_rgid()?, r.opt_rgid()?];
        let completed = r.bool()?;
        let reused = r.bool()?;
        let verify_pending = r.bool()?;
        let fwd_stalled = r.bool()?;
        let pending_value = r.opt_u64()?;
        let branch = if r.bool()? {
            let pred_next = r.pc()?;
            let pred_taken = r.bool()?;
            let meta = PredMeta { ghr_before: r.u64()? };
            let resolved = if r.bool()? {
                Some(BranchOutcome { taken: r.bool()?, next: r.pc()? })
            } else {
                None
            };
            Some(BranchState { pred_next, pred_taken, meta, resolved })
        } else {
            None
        };
        Ok(RobEntry {
            seq,
            pc,
            inst,
            dst,
            src_pregs,
            src_rgids,
            completed,
            reused,
            verify_pending,
            fwd_stalled,
            pending_value,
            branch,
            mem_addr: r.opt_u64()?,
            ghr_before: r.u64()?,
            ras_sp_before: r.u64()?,
        })
    }

    fn refetch(program: &Program, pc: Pc) -> Result<Inst, CkptError> {
        program
            .fetch(pc)
            .copied()
            .ok_or_else(|| CkptError::Corrupt(format!("checkpointed PC {pc} outside the program")))
    }

    /// Serializes the complete simulation state — architectural and
    /// microarchitectural, in-flight instructions included — into a
    /// versioned, checksummed envelope (see [`crate::ckpt`]). The
    /// pipeline is captured exactly as it stands, never drained, so a
    /// restored simulator continues bit-identically: same cycle counts,
    /// same statistics, same trace from the restore point onward.
    ///
    /// Instructions are stored by PC and re-fetched from the program at
    /// restore, guarded by a program identity hash in the payload.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = CkptWriter::new();
        w.u64(Self::config_hash(&self.cfg));
        w.u64(Self::program_hash(&self.program));
        w.str(self.engine.name());

        // Control scalars.
        w.u64(self.cycle);
        w.u64(self.next_seq);
        w.u64(self.squash_ctr);
        w.bool(self.halted);
        w.opt_pc(self.fetch_pc);
        w.u64(self.fetch_resume_at);
        w.bool(self.rgid_reset_requested);
        w.u64(self.rgid_overflows_total);
        w.u64(self.rgid_resets_total);
        w.u64(self.grants_total);
        match self.refill_blame {
            None => w.bool(false),
            Some((kind, seq)) => {
                w.bool(true);
                w.u8(flush_kind_code(kind));
                w.seq(seq);
            }
        }

        // Cumulative statistics. Cache counters live in the hierarchy
        // section and engine counters in the engine blob; `stats()`
        // recomposes them, so only the pipeline-owned counters go here.
        for v in [
            self.stats.committed_instructions,
            self.stats.committed_branches,
            self.stats.committed_cond_branches,
            self.stats.mispredictions,
            self.stats.renamed_instructions,
            self.stats.squashed_instructions,
            self.stats.flushes_branch,
            self.stats.flushes_mem_order,
            self.stats.flushes_reuse_verify,
            self.stats.committed_loads,
            self.stats.committed_stores,
            self.stats.store_forwards,
            self.stats.store_forward_stalls,
            self.stats.snoops,
            self.stats.ffwd_insts,
            self.stats.skipped_cycles,
        ] {
            w.u64(v);
        }

        // CPI-stack account.
        for s in self.account.slots {
            w.u64(s);
        }
        w.u64(self.account.credit_reuse_cycles);
        w.u64(self.account.credit_recon_fetches);

        self.bpred.ckpt_save(&mut w);

        // Frontend queue (instructions by PC).
        w.u64(self.frontend_q.len() as u64);
        for fi in &self.frontend_q {
            w.u64(fi.ready_cycle);
            w.pc(fi.pc);
            w.bool(fi.pred_taken);
            w.pc(fi.pred_next);
            w.u64(fi.meta.ghr_before);
            w.u64(fi.ghr_before);
            w.u64(fi.ras_sp_before);
        }

        self.rat.ckpt_save(&mut w);
        self.free_list.ckpt_save(&mut w);
        self.prf.ckpt_save(&mut w);
        self.rgids.ckpt_save(&mut w);

        w.u64(self.rob.len() as u64);
        for e in self.rob.iter() {
            Self::save_rob_entry(&mut w, e);
        }

        self.iq_int.ckpt_save(&mut w);
        self.iq_mem.ckpt_save(&mut w);

        w.u64(self.lsq.lq_len() as u64);
        for l in self.lsq.loads() {
            w.seq(l.seq);
            w.opt_u64(l.addr);
            w.bool(l.issued);
            w.opt_u64(l.value);
            w.bool(l.reused);
        }
        w.u64(self.lsq.sq_len() as u64);
        for s in self.lsq.stores() {
            w.seq(s.seq);
            w.opt_u64(s.addr);
            w.opt_u64(s.data);
        }

        // Completion events. Heap iteration order is arbitrary; sort so
        // identical machine states serialize to identical bytes.
        let mut comps: Vec<(u64, u64)> = self.completions.iter().map(|&Reverse(p)| p).collect();
        comps.sort_unstable();
        w.u64(comps.len() as u64);
        for (c, s) in comps {
            w.u64(c);
            w.u64(s);
        }

        w.u64(self.pending_flushes.len() as u64);
        for f in &self.pending_flushes {
            w.seq(f.first_squashed);
            w.pc(f.redirect);
            w.u8(flush_kind_code(f.kind));
            w.seq(f.cause_seq);
            w.pc(f.cause_pc);
        }

        self.memory.ckpt_save(&mut w);
        self.hier.ckpt_save(&mut w);

        // Engine state, as a length-prefixed blob so the pipeline can
        // frame it without knowing its layout.
        let mut ew = CkptWriter::new();
        self.engine.ckpt_save(&mut ew);
        w.bytes(&ew.finish());

        self.sampler.ckpt_save(&mut w);
        self.tracer.ckpt_save(&mut w);
        w.u32(CKPT_END);

        ckpt::seal(&w.finish())
    }

    /// Restores a snapshot taken by [`Simulator::snapshot`] over this
    /// simulator, which must have been constructed with the same
    /// configuration, program, and engine (checked via identity hashes
    /// in the payload — mismatches are rejected before any state is
    /// touched, as are all envelope corruptions).
    ///
    /// On a mid-payload [`CkptError::Corrupt`] the simulator may be
    /// partially overwritten and must be discarded; no error path leaves
    /// a *silently* inconsistent simulator.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let payload = ckpt::open(bytes)?;
        let mut r = CkptReader::new(payload);
        if r.u64()? != Self::config_hash(&self.cfg) {
            return Err(CkptError::ConfigMismatch);
        }
        if r.u64()? != Self::program_hash(&self.program) {
            return Err(CkptError::ProgramMismatch);
        }
        let name = r.str()?;
        if name != self.engine.name() {
            return Err(CkptError::EngineMismatch {
                found: name,
                expect: self.engine.name().to_string(),
            });
        }

        self.cycle = r.u64()?;
        self.next_seq = r.u64()?;
        self.squash_ctr = r.u64()?;
        self.halted = r.bool()?;
        self.fetch_pc = r.opt_pc()?;
        self.fetch_resume_at = r.u64()?;
        self.rgid_reset_requested = r.bool()?;
        self.rgid_overflows_total = r.u64()?;
        self.rgid_resets_total = r.u64()?;
        self.grants_total = r.u64()?;
        self.refill_blame =
            if r.bool()? { Some((flush_kind_from(r.u8()?)?, r.seq()?)) } else { None };

        self.stats.committed_instructions = r.u64()?;
        self.stats.committed_branches = r.u64()?;
        self.stats.committed_cond_branches = r.u64()?;
        self.stats.mispredictions = r.u64()?;
        self.stats.renamed_instructions = r.u64()?;
        self.stats.squashed_instructions = r.u64()?;
        self.stats.flushes_branch = r.u64()?;
        self.stats.flushes_mem_order = r.u64()?;
        self.stats.flushes_reuse_verify = r.u64()?;
        self.stats.committed_loads = r.u64()?;
        self.stats.committed_stores = r.u64()?;
        self.stats.store_forwards = r.u64()?;
        self.stats.store_forward_stalls = r.u64()?;
        self.stats.snoops = r.u64()?;
        self.stats.ffwd_insts = r.u64()?;
        self.stats.skipped_cycles = r.u64()?;

        for s in &mut self.account.slots {
            *s = r.u64()?;
        }
        self.account.credit_reuse_cycles = r.u64()?;
        self.account.credit_recon_fetches = r.u64()?;

        self.bpred.ckpt_load(&mut r)?;

        let n = r.seq_len(34)?;
        self.frontend_q.clear();
        for _ in 0..n {
            let ready_cycle = r.u64()?;
            let pc = r.pc()?;
            let inst = Self::refetch(&self.program, pc)?;
            self.frontend_q.push_back(FrontInst {
                ready_cycle,
                pc,
                inst,
                pred_taken: r.bool()?,
                pred_next: r.pc()?,
                meta: PredMeta { ghr_before: r.u64()? },
                ghr_before: r.u64()?,
                ras_sp_before: r.u64()?,
            });
        }

        self.rat.ckpt_load(&mut r)?;
        self.free_list.ckpt_load(&mut r)?;
        self.prf.ckpt_load(&mut r)?;
        self.rgids.ckpt_load(&mut r)?;

        let n = r.seq_len(40)?;
        if n > self.cfg.rob_size {
            return Err(CkptError::Corrupt(format!(
                "{n} ROB entries in checkpoint, capacity {}",
                self.cfg.rob_size
            )));
        }
        let mut rob = Rob::new(self.cfg.rob_size);
        let mut prev: Option<SeqNum> = None;
        for _ in 0..n {
            let e = Self::load_rob_entry(&mut r, &self.program)?;
            if prev.is_some_and(|p| e.seq <= p) {
                return Err(CkptError::Corrupt("ROB entries out of age order".into()));
            }
            prev = Some(e.seq);
            rob.push(e);
        }
        self.rob = rob;

        self.iq_int.ckpt_load(&mut r)?;
        self.iq_mem.ckpt_load(&mut r)?;

        let nl = r.seq_len(27)?;
        let mut lsq = Lsq::new(self.cfg.lq_size, self.cfg.sq_size);
        if nl > self.cfg.lq_size {
            return Err(CkptError::Corrupt(format!(
                "{nl} load-queue entries in checkpoint, capacity {}",
                self.cfg.lq_size
            )));
        }
        let mut prev: Option<SeqNum> = None;
        for _ in 0..nl {
            let seq = r.seq()?;
            if prev.is_some_and(|p| seq <= p) {
                return Err(CkptError::Corrupt("load queue out of age order".into()));
            }
            prev = Some(seq);
            lsq.push_load(LqEntry {
                seq,
                addr: r.opt_u64()?,
                issued: r.bool()?,
                value: r.opt_u64()?,
                reused: r.bool()?,
            });
        }
        let ns = r.seq_len(26)?;
        if ns > self.cfg.sq_size {
            return Err(CkptError::Corrupt(format!(
                "{ns} store-queue entries in checkpoint, capacity {}",
                self.cfg.sq_size
            )));
        }
        let mut prev: Option<SeqNum> = None;
        for _ in 0..ns {
            let seq = r.seq()?;
            if prev.is_some_and(|p| seq <= p) {
                return Err(CkptError::Corrupt("store queue out of age order".into()));
            }
            prev = Some(seq);
            lsq.push_store(SqEntry { seq, addr: r.opt_u64()?, data: r.opt_u64()? });
        }
        self.lsq = lsq;

        let n = r.seq_len(16)?;
        self.completions.clear();
        for _ in 0..n {
            let c = r.u64()?;
            let s = r.u64()?;
            self.completions.push(Reverse((c, s)));
        }

        let n = r.seq_len(33)?;
        self.pending_flushes.clear();
        for _ in 0..n {
            self.pending_flushes.push(PendingFlush {
                first_squashed: r.seq()?,
                redirect: r.pc()?,
                kind: flush_kind_from(r.u8()?)?,
                cause_seq: r.seq()?,
                cause_pc: r.pc()?,
            });
        }

        self.memory.ckpt_load(&mut r)?;
        self.hier.ckpt_load(&mut r)?;

        let blob = r.bytes()?;
        let mut er = CkptReader::new(blob);
        self.engine.ckpt_load(&mut er)?;
        er.done()?;

        self.sampler.ckpt_load(&mut r)?;
        self.tracer.ckpt_load(&mut r)?;
        if r.u32()? != CKPT_END {
            return Err(CkptError::Corrupt("missing end marker".into()));
        }
        r.done()?;

        self.tracer.emit(TraceEvent::Ckpt {
            cycle: self.cycle,
            action: CkptAction::Restore,
            insts: self.stats.committed_instructions,
        });
        Ok(())
    }

    /// Functionally fast-forwards `n` instructions through the shared
    /// architectural step ([`crate::interp`]'s `arch_step` — the same
    /// semantics the interpreter oracle runs), warming the branch
    /// predictor and cache hierarchy along the way, then positions the
    /// fetch unit so detailed simulation resumes at the next PC. Returns
    /// the number of instructions actually executed (fewer than `n` only
    /// when the program halts or leaves its image first).
    ///
    /// Warming fidelity: conditional-branch state (bimodal, TAGE tables,
    /// global history) is updated exactly as a detailed run's commit
    /// stream would, so it matches a drained cycle-accurate run
    /// bit-for-bit; the RAS, BTB, and caches see the *architectural*
    /// stream only, so they diverge from a detailed run by its wrong-path
    /// accesses (pinned in the warmup-fidelity tests).
    ///
    /// The executed instructions are reported as
    /// [`SimStats::ffwd_insts`] / [`SimStats::skipped_cycles`] — they do
    /// not count as committed, so IPC measures the detailed region only.
    ///
    /// # Panics
    ///
    /// Panics unless the simulator is pristine (no cycles simulated, no
    /// instructions renamed): fast-forward replaces the start of the
    /// run, it cannot splice into the middle of one.
    pub fn fast_forward(&mut self, n: u64) -> u64 {
        assert!(
            self.cycle == 0 && self.next_seq == 1 && self.stats.committed_instructions == 0,
            "fast_forward requires a pristine simulator"
        );
        let mut pc = self.program.base();
        let mut executed = 0u64;
        while executed < n {
            let Some(&inst) = self.program.fetch(pc) else {
                break; // left the program image; resume detailed fetch here
            };
            let mut st = FfwdState { rat: &self.rat, prf: &mut self.prf, memory: &mut self.memory };
            let out = arch_step(&self.program, pc, &mut st).expect("fetch checked above");
            executed += 1;
            match out.kind {
                ArchKind::Cond { taken } => {
                    // Mirror the detailed lifecycle: predict (speculative
                    // GHR update), recover on mispredict, train at commit.
                    let (pred, meta) = self.bpred.predict_cond(pc);
                    if pred != taken {
                        self.bpred.recover_cond(meta, taken);
                    }
                    self.bpred.train_cond(pc, taken, meta);
                }
                ArchKind::Jalr { target } => self.bpred.update_indirect(pc, target),
                ArchKind::Load { addr } | ArchKind::Store { addr } => {
                    let _ = self.hier.access(addr);
                }
                ArchKind::Plain => {}
            }
            if inst.is_call() {
                self.bpred.ras_push(pc.next());
            } else if inst.is_return() {
                let _ = self.bpred.ras_pop();
            }
            match out.next {
                Some(next) => pc = next,
                None => {
                    self.halted = true;
                    break;
                }
            }
        }
        self.fetch_pc = if self.halted { None } else { Some(pc) };
        self.stats.ffwd_insts += executed;
        self.stats.skipped_cycles += executed;
        self.tracer.emit(TraceEvent::Ckpt {
            cycle: self.cycle,
            action: CkptAction::Ffwd,
            insts: executed,
        });
        executed
    }

    /// Runs until at least `n` instructions have committed (or halt /
    /// the cycle bound). Used by the harness to place checkpoints at
    /// instruction-count boundaries.
    pub fn run_until_insts(&mut self, n: u64) {
        while !self.halted
            && self.cycle < self.cfg.max_cycles
            && self.stats.committed_instructions < n
        {
            self.step();
        }
    }
}

/// Payload terminator, checked before [`CkptReader::done`] so a codec
/// drift shows up as a missing marker rather than a trailing-bytes error.
const CKPT_END: u32 = 0x444e_4521;

/// The RAT/PRF/memory of a pristine pipeline as an [`ArchState`]: reads
/// and writes go through the identity rename mapping, so the fast-forward
/// leaves the architectural values exactly where the detailed pipeline
/// expects them.
struct FfwdState<'a> {
    rat: &'a Rat,
    prf: &'a mut Prf,
    memory: &'a mut MainMemory,
}

impl ArchState for FfwdState<'_> {
    fn reg(&self, a: ArchReg) -> u64 {
        self.prf.read(self.rat.lookup(a))
    }

    fn set_reg(&mut self, a: ArchReg, v: u64) {
        self.prf.write(self.rat.lookup(a), v);
    }

    fn mem_read(&mut self, addr: u64) -> u64 {
        self.memory.read_u64(addr)
    }

    fn mem_write(&mut self, addr: u64, v: u64) {
        self.memory.write_u64(addr, v)
    }

    fn wrap(&self, addr: u64) -> u64 {
        self.memory.wrap(addr)
    }
}

fn flush_kind_code(k: FlushKind) -> u8 {
    match k {
        FlushKind::BranchMispredict => 0,
        FlushKind::MemoryOrder => 1,
        FlushKind::ReuseVerification => 2,
    }
}

fn flush_kind_from(b: u8) -> Result<FlushKind, CkptError> {
    match b {
        0 => Ok(FlushKind::BranchMispredict),
        1 => Ok(FlushKind::MemoryOrder),
        2 => Ok(FlushKind::ReuseVerification),
        _ => Err(CkptError::Corrupt(format!("unknown flush kind byte {b}"))),
    }
}

fn load_arch_reg(r: &mut CkptReader) -> Result<ArchReg, CkptError> {
    let i = r.u8()? as usize;
    ArchReg::all()
        .nth(i)
        .ok_or_else(|| CkptError::Corrupt(format!("arch register index {i} out of range")))
}

/// Whether the `MSSR_PARANOID` reuse-value oracle is enabled (checked
/// once): at every load-reuse grant, the granted value is compared with
/// what the load would read right now and divergences are printed. Used
/// to hunt engine soundness bugs; false positives are possible when an
/// older store with an unknown address is still in flight (the case
/// `store_check` covers later).
fn paranoid_enabled() -> bool {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("MSSR_PARANOID").is_some())
}

fn fu_class(op: Opcode) -> Option<FuClass> {
    match op {
        Opcode::Nop | Opcode::Halt => None,
        Opcode::Ld | Opcode::St => Some(FuClass::Lsu),
        op if op.is_control() => Some(FuClass::Bru),
        _ => Some(FuClass::Alu),
    }
}

/// Groups a PC stream into contiguous block ranges, splitting at
/// discontinuities, predicted-taken control flow, and the fetch-block
/// size limit.
fn group_blocks(pcs: impl Iterator<Item = (Pc, bool)>, max_block: usize) -> Vec<BlockRange> {
    let mut out: Vec<BlockRange> = Vec::new();
    let mut cur: Option<(BlockRange, usize, bool)> = None;
    for (pc, taken) in pcs {
        match &mut cur {
            Some((range, n, last_taken))
                if !*last_taken && pc == range.end.next() && *n < max_block =>
            {
                range.end = pc;
                *n += 1;
                *last_taken = taken;
            }
            _ => {
                if let Some((r, _, _)) = cur.take() {
                    out.push(r);
                }
                cur = Some((BlockRange { start: pc, end: pc }, 1, taken));
            }
        }
    }
    if let Some((r, _, _)) = cur {
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_isa::{regs::*, Assembler};

    fn run_program(build: impl FnOnce(&mut Assembler)) -> (Simulator, SimStats) {
        let mut a = Assembler::new();
        build(&mut a);
        let program = a.assemble().expect("assembles");
        let cfg = SimConfig::default().with_max_cycles(2_000_000);
        let mut sim = Simulator::new(cfg, program);
        let stats = sim.run();
        (sim, stats)
    }

    #[test]
    fn straightline_arithmetic_commits() {
        let (sim, stats) = run_program(|a| {
            a.li(T0, 6);
            a.li(T1, 7);
            a.mul(T2, T0, T1);
            a.st(ZERO, T2, 0x200);
            a.halt();
        });
        assert!(sim.is_halted());
        assert_eq!(stats.committed_instructions, 5);
        assert_eq!(sim.read_mem_u64(0x200), 42);
        assert_eq!(stats.mispredictions, 0);
    }

    #[test]
    fn loop_counts_correctly() {
        let (sim, stats) = run_program(|a| {
            a.li(T0, 0);
            a.li(T1, 100);
            a.label("loop");
            a.addi(T0, T0, 1);
            a.blt(T0, T1, "loop");
            a.st(ZERO, T0, 0x100);
            a.halt();
        });
        assert_eq!(sim.read_mem_u64(0x100), 100);
        // 2 setup + 100*2 loop + store + halt
        assert_eq!(stats.committed_instructions, 2 + 200 + 2);
        assert!(
            stats.ipc() > 1.0,
            "a tight predictable loop should exceed IPC 1, got {}",
            stats.ipc()
        );
    }

    #[test]
    fn load_store_through_memory() {
        let (sim, _) = run_program(|a| {
            a.li(T0, 0x300);
            a.li(T1, 1234);
            a.st(T0, T1, 0);
            a.ld(T2, T0, 0); // must forward or read the committed store
            a.addi(T2, T2, 1);
            a.st(T0, T2, 8);
            a.halt();
        });
        assert_eq!(sim.read_mem_u64(0x300), 1234);
        assert_eq!(sim.read_mem_u64(0x308), 1235);
    }

    #[test]
    fn store_to_load_forwarding_counts() {
        let (_, stats) = run_program(|a| {
            a.li(T0, 0x400);
            a.li(T1, 5);
            a.st(T0, T1, 0);
            a.ld(T2, T0, 0);
            a.halt();
        });
        assert!(stats.store_forwards >= 1, "load should forward from in-flight store");
    }

    #[test]
    fn data_dependent_branch_mispredicts_and_recovers() {
        // Branch direction depends on a loaded pseudo-random value; the
        // final accumulated sum must match the architectural result.
        let (sim, stats) = run_program(|a| {
            a.li(S0, 0); // i
            a.li(S1, 200); // bound
            a.li(S2, 0); // acc
            a.li(S3, 0x123456789); // lcg state
            a.label("loop");
            // state = state * 6364136223846793005 + 1442695040888963407
            a.li(T0, 6364136223846793005);
            a.mul(S3, S3, T0);
            a.li(T0, 1442695040888963407);
            a.add(S3, S3, T0);
            a.srli(T1, S3, 33);
            a.andi(T1, T1, 1);
            a.beq(T1, ZERO, "skip");
            a.addi(S2, S2, 3);
            a.j("join");
            a.label("skip");
            a.addi(S2, S2, 5);
            a.label("join");
            a.addi(S0, S0, 1);
            a.blt(S0, S1, "loop");
            a.st(ZERO, S2, 0x500);
            a.halt();
        });
        // Reference model.
        let mut state = 0x123456789u64;
        let mut acc = 0u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let bit = (state >> 33) & 1;
            acc += if bit != 0 { 3 } else { 5 };
        }
        assert_eq!(sim.read_mem_u64(0x500), acc, "wrong-path execution must not corrupt state");
        assert!(
            stats.mispredictions > 20,
            "random branches should mispredict, got {}",
            stats.mispredictions
        );
    }

    #[test]
    fn memory_order_violation_detected_and_replayed() {
        // A store whose address arrives late (behind a divide) followed by
        // a load to the same address that issues first.
        let (sim, stats) = run_program(|a| {
            a.li(T0, 1024);
            a.li(T1, 4);
            a.li(S0, 0x600);
            a.li(S1, 77);
            a.st(S0, S1, 0); // establish old value 77
            a.div(T2, T0, T1); // slow: 1024/4 = 256
            a.add(T3, T2, ZERO);
            a.st(T3, S1, 0x600 - 256); // addr = 0x600, late
            a.li(S1, 99);
            a.st(S0, S1, 0); // younger store overwrites with 99
            a.ld(T4, S0, 0); // younger load, issues early, may read stale
            a.st(ZERO, T4, 0x608);
            a.halt();
        });
        // Architecturally the load must see 99.
        assert_eq!(sim.read_mem_u64(0x608), 99);
        // At least one ordering violation should have been detected on the
        // way (the load issues before the slow store chain resolves).
        assert!(
            stats.flushes_mem_order >= 1,
            "expected a store-to-load replay, got {}",
            stats.flushes_mem_order
        );
    }

    #[test]
    fn call_and_return_via_btb() {
        let (sim, _) = run_program(|a| {
            a.li(S0, 0);
            a.li(S1, 50);
            a.label("loop");
            a.call("f");
            a.addi(S0, S0, 1);
            a.blt(S0, S1, "loop");
            a.st(ZERO, S2, 0x700);
            a.halt();
            a.label("f");
            a.addi(S2, S2, 2);
            a.ret();
        });
        assert_eq!(sim.read_mem_u64(0x700), 100);
    }

    #[test]
    fn snoop_replays_speculative_loads() {
        // A load executes speculatively; a snoop to its address arrives
        // before it commits; it must be replayed (flush counted), and the
        // program still produces the right value.
        let mut a = Assembler::new();
        a.li(T0, 0x900);
        a.li(T1, 1000);
        a.li(T2, 4);
        a.div(T3, T1, T2); // slow op keeps commit away
        a.ld(T4, T0, 0); // speculative load, executes early
        a.add(T5, T4, T3);
        a.st(ZERO, T5, 0x100);
        a.halt();
        let program = a.assemble().unwrap();
        let mut sim = Simulator::new(SimConfig::default().with_max_cycles(100_000), program);
        sim.write_mem_u64(0x900, 7);
        // Step until the load has issued but the divide holds up commit,
        // then snoop its address.
        sim.run_cycles(12);
        sim.inject_snoop(0x900);
        let stats = sim.run();
        assert_eq!(sim.read_mem_u64(0x100), 257);
        assert_eq!(stats.snoops, 1);
        assert!(
            stats.flushes_mem_order >= 1,
            "the snooped speculative load must replay, got {} flushes",
            stats.flushes_mem_order
        );
    }

    #[test]
    fn snoop_to_unrelated_address_is_harmless() {
        let mut a = Assembler::new();
        a.li(T0, 0x900);
        a.ld(T4, T0, 0);
        a.st(ZERO, T4, 0x100);
        a.halt();
        let mut sim =
            Simulator::new(SimConfig::default().with_max_cycles(100_000), a.assemble().unwrap());
        sim.write_mem_u64(0x900, 5);
        sim.run_cycles(8);
        sim.inject_snoop(0x5000);
        let stats = sim.run();
        assert_eq!(sim.read_mem_u64(0x100), 5);
        assert_eq!(stats.flushes_mem_order, 0);
    }

    #[test]
    fn max_cycles_bound_stops_infinite_loop() {
        let mut a = Assembler::new();
        a.label("spin");
        a.j("spin");
        let program = a.assemble().unwrap();
        let mut sim = Simulator::new(SimConfig::default().with_max_cycles(1000), program);
        let stats = sim.run();
        assert_eq!(stats.cycles, 1000);
        assert!(!sim.is_halted());
    }

    #[test]
    fn max_insts_bound() {
        let mut a = Assembler::new();
        a.li(T1, 1_000_000);
        a.label("loop");
        a.addi(T0, T0, 1);
        a.blt(T0, T1, "loop");
        a.halt();
        let program = a.assemble().unwrap();
        let mut sim = Simulator::new(SimConfig::default().with_max_insts(5000), program);
        let stats = sim.run();
        assert!(sim.is_halted());
        assert!(stats.committed_instructions >= 5000);
        assert!(stats.committed_instructions < 5000 + 16, "stops promptly at the bound");
    }

    #[test]
    fn group_blocks_splits_on_discontinuity_and_size() {
        let pcs: Vec<(Pc, bool)> = (0..10).map(|i| (Pc::new(0x1000 + i * 4), false)).collect();
        let blocks = group_blocks(pcs.into_iter(), 8);
        assert_eq!(blocks.len(), 2, "8-instruction limit splits the run");
        assert_eq!(blocks[0], BlockRange { start: Pc::new(0x1000), end: Pc::new(0x101c) });
        assert_eq!(blocks[1], BlockRange { start: Pc::new(0x1020), end: Pc::new(0x1024) });

        let jumpy = vec![
            (Pc::new(0x1000), false),
            (Pc::new(0x1004), true), // taken branch ends the block
            (Pc::new(0x2000), false),
        ];
        let blocks = group_blocks(jumpy.into_iter(), 8);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0], BlockRange { start: Pc::new(0x1000), end: Pc::new(0x1004) });
        assert_eq!(blocks[1], BlockRange { start: Pc::new(0x2000), end: Pc::new(0x2000) });
    }

    #[test]
    fn nested_hard_branches_still_architecturally_correct() {
        // The Listing-1 shape: two nested data-dependent branches.
        let (sim, stats) = run_program(|a| {
            a.li(S0, 0); // i
            a.li(S1, 300);
            a.li(S2, 0); // acc
            a.li(S3, 0xdeadbeef);
            a.label("loop");
            a.li(T0, 0x9e3779b97f4a7c15u64 as i64);
            a.mul(S3, S3, T0);
            a.srli(T1, S3, 31);
            a.andi(T2, T1, 1);
            a.andi(T3, T1, 2);
            a.beq(T2, ZERO, "merge"); // Br1
            a.beq(T3, ZERO, "inner_done"); // Br2
            a.addi(S2, S2, 7);
            a.label("inner_done");
            a.addi(S2, S2, 11);
            a.label("merge");
            a.addi(S2, S2, 1);
            a.addi(S0, S0, 1);
            a.blt(S0, S1, "loop");
            a.st(ZERO, S2, 0x800);
            a.halt();
        });
        let mut state = 0xdeadbeefu64;
        let mut acc = 0u64;
        for _ in 0..300 {
            state = state.wrapping_mul(0x9e3779b97f4a7c15);
            let t1 = state >> 31;
            if t1 & 1 != 0 {
                if t1 & 2 != 0 {
                    acc += 7;
                }
                acc += 11;
            }
            acc += 1;
        }
        assert_eq!(sim.read_mem_u64(0x800), acc);
        assert!(stats.mispredictions > 50);
    }

    #[test]
    fn jalr_negative_displacement_across_32bit_boundary() {
        // The jalr target is `base.wrapping_add(imm as u64)`; `imm()` is
        // already sign-extended to i64, so `as u64` must be a
        // sign-preserving bit-cast. Force a subtraction that crosses a
        // 32-bit boundary: base = RA + 2^32, displacement = -2^32. If the
        // displacement were zero-extended (or truncated to 32 bits) the
        // jump would land ~4 GiB away from the return point and the
        // program would never halt.
        let (sim, _) = run_program(|a| {
            a.li(S0, 0xa00);
            a.call("sub");
            a.li(S1, 1); // return lands here
            a.st(S0, S1, 0);
            a.halt();
            a.label("sub");
            a.li(T1, 1i64 << 32);
            a.add(T0, RA, T1); // T0 = return address + 2^32
            a.jalr(ZERO, T0, -(1i64 << 32)); // back down across the boundary
        });
        assert!(sim.is_halted(), "jalr with a negative displacement must return");
        assert_eq!(sim.read_mem_u64(0xa00), 1);
    }

    #[test]
    fn trace_events_are_recorded_and_counted() {
        let mut a = Assembler::new();
        a.li(T0, 0x300);
        a.li(T1, 7);
        a.st(T0, T1, 0);
        a.ld(T2, T0, 0);
        a.halt();
        let program = a.assemble().expect("assembles");
        let mut sim = Simulator::new(SimConfig::default().with_max_cycles(100_000), program);
        let sink = crate::trace::BufferSink::new();
        let buf = sink.handle();
        sim.set_trace_sink(Box::new(sink));
        sim.run();
        assert!(sim.take_trace_sink().is_some());
        let stats = sim.stats();
        let trace = buf.lock().unwrap().clone();
        // Five instructions commit; each also fetches and renames, and
        // all but the halt (which never enters an issue queue) issue.
        for (key, at_least) in
            [("trace_fetch", 1), ("trace_rename", 5), ("trace_issue", 4), ("trace_commit", 5)]
        {
            let n = stats
                .engine
                .extra
                .iter()
                .find(|(k, _)| k == key)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing counter {key}"));
            assert!(n >= at_least, "{key} = {n}, expected >= {at_least}");
        }
        // The JSON-lines buffer carries one object per line matching the
        // counters' total.
        let lines: Vec<&str> = trace.lines().collect();
        let total: u64 = TraceKind::ALL.iter().map(|&k| sim_trace_count(&stats, k)).sum();
        assert_eq!(lines.len() as u64, total);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines.iter().any(|l| l.contains("\"ev\":\"commit\"")));
    }

    fn sim_trace_count(stats: &SimStats, k: TraceKind) -> u64 {
        let key = format!("trace_{}", k.name());
        stats.engine.extra.iter().find(|(n, _)| *n == key).map_or(0, |&(_, v)| v)
    }

    #[test]
    fn clean_run_has_no_invariant_violations() {
        let (sim, _) = run_program(|a| {
            a.li(S0, 0);
            a.li(S1, 40);
            a.label("loop");
            a.call("f");
            a.addi(S0, S0, 1);
            a.blt(S0, S1, "loop");
            a.st(ZERO, S2, 0xb00);
            a.halt();
            a.label("f");
            a.addi(S2, S2, 3);
            a.ret();
        });
        assert_eq!(sim.read_mem_u64(0xb00), 120);
        let violations = sim.invariant_violations();
        assert!(violations.is_empty(), "unexpected violations: {violations:?}");
    }
}
