//! The pipeline orchestrator: an execution-driven, cycle-level
//! out-of-order core.
//!
//! Each simulated cycle runs commit → writeback → issue → rename → fetch,
//! then applies at most one pipeline flush (the oldest discovered this
//! cycle). The stage passes themselves live in [`crate::stage`] as pure
//! functions over an explicit machine state; [`Simulator`] owns that
//! state (plus the engine, tracer, sampler, and per-cycle scratch
//! buffers) and sequences the passes. The frontend predicts and fetches
//! one prediction block per cycle; instructions travel through a latency
//! queue modelling the frontend depth before renaming. Wrong-path
//! instructions execute with real values — the property squash reuse
//! depends on.

use mssr_isa::{ArchReg, Pc, Program};

use crate::account::{Category, CycleAccount};
use crate::bpred::BranchPredictor;
use crate::check::{self, Violation};
use crate::ckpt::{self, CkptError};
use crate::config::SimConfig;
use crate::engine::{NoReuse, ReuseEngine};
use crate::interp::{arch_step, ArchKind, ArchState};
use crate::mem::{Hierarchy, MainMemory};
use crate::prof::{Prof, ProfBucket, ProfReport, StageStamp};
use crate::rename::{Prf, Rat};
use crate::sample::{Sample, SampleRing, Sampler, DEFAULT_RING_CAPACITY};
use crate::stage::{self, ectx, MachineState, PendingFlush, Scratch};
use crate::stats::SimStats;
use crate::trace::{CkptAction, TraceEvent, TraceKind, TraceSink, Tracer};
use crate::types::{FlushKind, PhysReg, Rgid};

/// The simulator: one out-of-order core running one program.
///
/// A thin orchestrator over the stage passes in [`crate::stage`]: it owns
/// the machine state, the reuse engine, the tracer, the sampler, and the
/// per-cycle scratch buffers, and calls the stages in order from
/// [`Simulator::step`].
///
/// # Example
///
/// ```
/// use mssr_isa::{regs::*, Assembler};
/// use mssr_sim::{SimConfig, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Assembler::new();
/// a.li(T0, 41);
/// a.addi(T0, T0, 1);
/// a.st(ZERO, T0, 0x100);
/// a.halt();
/// let mut sim = Simulator::new(SimConfig::default(), a.assemble()?);
/// let stats = sim.run();
/// assert_eq!(sim.read_mem_u64(0x100), 42);
/// assert_eq!(stats.committed_instructions, 4);
/// # Ok(())
/// # }
/// ```
pub struct Simulator {
    st: MachineState,
    engine: Box<dyn ReuseEngine>,
    tracer: Tracer,
    sampler: Sampler,
    scratch: Scratch,
    prof: Prof,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("cycle", &self.st.cycle)
            .field("engine", &self.engine.name())
            .field("halted", &self.st.halted)
            .field("committed", &self.st.stats.committed_instructions)
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Creates a simulator with the baseline [`NoReuse`] engine.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`].
    pub fn new(cfg: SimConfig, program: Program) -> Simulator {
        Simulator::with_engine(cfg, program, Box::new(NoReuse))
    }

    /// Creates a simulator with a squash-reuse engine.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`].
    pub fn with_engine(
        cfg: SimConfig,
        program: Program,
        engine: Box<dyn ReuseEngine>,
    ) -> Simulator {
        cfg.validate().expect("invalid simulator configuration");
        Simulator {
            st: MachineState::new(cfg, program),
            engine,
            tracer: Tracer::default(),
            sampler: Sampler::new(0, DEFAULT_RING_CAPACITY),
            scratch: Scratch::new(),
            prof: Prof::off(),
        }
    }

    /// Writes a 64-bit word into simulated memory (workload setup).
    pub fn write_mem_u64(&mut self, addr: u64, value: u64) {
        self.st.memory.write_u64(addr, value);
    }

    /// Reads a 64-bit word from simulated memory (result inspection).
    pub fn read_mem_u64(&self, addr: u64) -> u64 {
        self.st.memory.read_u64(addr)
    }

    /// Injects an external snoop request (multicore load-to-load hazard
    /// stimulus, §3.8.2).
    ///
    /// The reuse engine is notified (so squashed-load reuse candidates
    /// are poisoned), and — as in the XiangShan-style LSQ the paper
    /// assumes — any speculatively executed, uncommitted load to the
    /// snooped address is scheduled for replay at the end of the next
    /// cycle, since its value may no longer be coherent.
    pub fn inject_snoop(&mut self, addr: u64) {
        let st = &mut self.st;
        st.stats.snoops += 1;
        self.engine.on_snoop(addr, &mut ectx!(st));
        let victim = st
            .lsq
            .loads()
            .filter(|l| l.issued && l.addr.is_some_and(|a| a >> 3 == addr >> 3))
            .map(|l| l.seq)
            .min();
        if let Some(seq) = victim {
            if let Some(e) = st.rob.get(seq) {
                st.pending_flushes.push(PendingFlush {
                    first_squashed: seq,
                    redirect: e.pc,
                    kind: FlushKind::MemoryOrder,
                    cause_seq: seq,
                    cause_pc: e.pc,
                });
            }
        }
    }

    /// Whether the program has retired its `halt` (or hit a bound).
    pub fn is_halted(&self) -> bool {
        self.st.halted
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.st.cycle
    }

    /// The active engine's name.
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Frontend snapshot for state dumps: fetch PC and in-flight count.
    pub(crate) fn frontend_state(&self) -> (Option<Pc>, usize) {
        (self.st.fetch_pc, self.st.frontend_q.len())
    }

    /// ROB snapshot for state dumps: occupancy, capacity, head summary.
    pub(crate) fn rob_state(&self) -> (usize, usize, Option<String>) {
        (
            self.st.rob.len(),
            self.st.rob.capacity(),
            self.st.rob.head().map(|e| format!("{} {} ({})", e.seq, e.pc, e.inst)),
        )
    }

    /// Allocatable physical registers.
    ///
    /// After a halted run with an empty pipeline, every transient hold
    /// (in-flight destinations, engine stream reservations that were
    /// ruled out) must have been released, so this is the basis of the
    /// free-list conservation tests: a reuse engine may never leak a
    /// physical register.
    pub fn free_phys_regs(&self) -> usize {
        self.st.free_list.available()
    }

    pub(crate) fn free_regs(&self) -> usize {
        self.st.free_list.available()
    }

    /// The committed architectural value of register `a` (read through
    /// the RAT into the physical register file). Meaningful once the
    /// pipeline has drained (e.g. after `run()` halts); used by the
    /// cross-engine equivalence tests to compare final register state.
    pub fn read_arch_reg(&self, a: ArchReg) -> u64 {
        self.st.prf.read(self.st.rat.lookup(a))
    }

    /// Current mapping of an architectural register.
    pub(crate) fn rat_entry(&self, a: ArchReg) -> (PhysReg, Rgid) {
        (self.st.rat.lookup(a), self.st.rat.rgid(a))
    }

    /// Attaches a trace sink: from the next cycle on, every pipeline
    /// event is recorded into it (see [`TraceEvent`] for the schema).
    /// Replaces — and flushes — any previously attached sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.set_sink(sink);
    }

    /// Detaches and flushes the trace sink, if any. Event counters keep
    /// their values, so [`Simulator::stats`] still reports `trace_*`.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracer.take_sink()
    }

    /// Restricts which event kinds reach the trace sink: a bitwise OR of
    /// [`TraceKind::bit`] values. The default passes everything. The
    /// harness's `--sample N` flag uses this to attach a sink masked to
    /// [`TraceKind::Sample`] only, emitting the time series without the
    /// per-instruction event stream.
    pub fn set_trace_mask(&mut self, mask: u64) {
        self.tracer.set_mask(mask);
    }

    /// Enables interval sampling: every `interval` cycles a [`Sample`] of
    /// statistics deltas is recorded into the sample ring and emitted as
    /// a [`TraceEvent::Sample`] if a trace sink is attached. `0` (the
    /// default) disables sampling. Resets any previously recorded
    /// samples.
    pub fn set_sample_interval(&mut self, interval: u64) {
        self.sampler = Sampler::new(interval, DEFAULT_RING_CAPACITY);
    }

    /// The interval samples recorded so far (empty unless
    /// [`Simulator::set_sample_interval`] enabled sampling).
    pub fn samples(&self) -> &SampleRing {
        self.sampler.ring()
    }

    /// The CPI-stack account accumulated so far (see [`crate::account`]).
    pub fn account(&self) -> &CycleAccount {
        &self.st.account
    }

    /// Corrupts the CPI-stack account by one slot. Test-only hook used by
    /// the invariant suite to prove the conservation rule trips; never
    /// call it anywhere else.
    #[doc(hidden)]
    pub fn corrupt_account_for_test(&mut self) {
        self.st.account.slots[Category::Base.index()] += 1;
    }

    /// Runs until `halt` retires or a configured bound is reached,
    /// returning the final statistics.
    pub fn run(&mut self) -> SimStats {
        while !self.st.halted && self.st.cycle < self.st.cfg.max_cycles {
            self.step();
        }
        self.stats()
    }

    /// Runs at most `n` cycles (stops early on halt).
    pub fn run_cycles(&mut self, n: u64) {
        for _ in 0..n {
            if self.st.halted || self.st.cycle >= self.st.cfg.max_cycles {
                break;
            }
            self.step();
        }
    }

    /// A statistics snapshot (cheap; can be taken mid-run).
    pub fn stats(&self) -> SimStats {
        let mut s = self.st.stats.clone();
        s.cycles = self.st.cycle;
        s.l1_hits = self.st.hier.l1.hits();
        s.l1_misses = self.st.hier.l1.misses();
        s.l2_hits = self.st.hier.l2.hits();
        s.l2_misses = self.st.hier.l2.misses();
        s.engine = self.engine.stats();
        s.account = self.st.account;
        // RGID overflow/reset accounting is authoritative on the pipeline
        // side (it owns the counters); engines need not track it.
        s.engine.rgid_overflows = self.st.rgid_overflows_total;
        s.engine.rgid_resets = self.st.rgid_resets_total;
        if self.tracer.active() {
            for k in TraceKind::ALL {
                s.engine.extra.push((format!("trace_{}", k.name()), self.tracer.count(k)));
            }
        }
        s
    }

    /// Advances the simulation by one cycle: the stage passes in order,
    /// then flush arbitration, the RGID reset, accounting, and (in debug
    /// builds) the invariant sweep.
    ///
    /// When self-profiling is armed ([`Simulator::set_profiling`]) and
    /// this cycle falls on the sampling stride, the clock is read
    /// between stage passes and the deltas accumulate in the profiler —
    /// the stages themselves run identically either way.
    pub fn step(&mut self) {
        if self.st.bpred.feed_pending() {
            self.install_oracle_feed(0);
        }
        let mut stamp = self.prof.cycle_due(self.st.cycle).then(StageStamp::start);
        self.step_inner(&mut stamp);
        if let Some(s) = stamp {
            self.prof.absorb(&s);
        }
    }

    /// Computes and installs the architectural branch stream the
    /// oracle-fed predictors read (see [`crate::bpred::OracleFeed`]).
    ///
    /// Deferred to the first cycle (or fast-forward) rather than done at
    /// construction because workload memory images are written *after*
    /// `Simulator::new`; by the first step the initial state is final.
    /// The replay is bounded by every instruction the run can consume:
    /// `extra` not-yet-counted instructions (the fast-forward span when
    /// called from there), plus the committed-instruction bound, capped
    /// by the cycle bound times the commit width, plus slack for
    /// in-flight fetch runahead. Restored simulators never recompute the
    /// feed — it rides the checkpoint, because a mid-run restore no
    /// longer has the initial memory image to replay from.
    fn install_oracle_feed(&mut self, extra: u64) {
        const FEED_SLACK: u64 = 65_536;
        let cfg = &self.st.cfg;
        let bound = cfg
            .max_insts
            .min(cfg.max_cycles.saturating_mul(cfg.commit_width as u64))
            .saturating_add(FEED_SLACK)
            .saturating_add(extra);
        let feed = crate::bpred::OracleFeed::compute(&self.st.program, &self.st.memory, bound);
        self.st.bpred.install_feed(feed);
    }

    fn step_inner(&mut self, stamp: &mut Option<StageStamp>) {
        fn mark(stamp: &mut Option<StageStamp>, bucket: ProfBucket) {
            if let Some(s) = stamp {
                s.mark(bucket);
            }
        }
        let (committed, blame) =
            stage::commit::run(&mut self.st, self.engine.as_mut(), &mut self.tracer);
        mark(stamp, ProfBucket::Commit);
        if self.st.halted {
            // The final partial cycle (the one that retired `halt` or hit
            // an instruction bound) is never counted — neither in the
            // cycle counter nor in the account — which keeps the
            // conservation law `sum(slots) == cycles × commit_width`
            // exact.
            return;
        }
        stage::execute::writeback(&mut self.st, &mut self.tracer);
        mark(stamp, ProfBucket::Execute);
        stage::issue::run(&mut self.st, self.engine.as_mut(), &mut self.tracer, &mut self.scratch);
        mark(stamp, ProfBucket::Issue);
        stage::rename::run(&mut self.st, self.engine.as_mut(), &mut self.tracer);
        mark(stamp, ProfBucket::Rename);
        stage::fetch::run(&mut self.st, self.engine.as_mut(), &mut self.tracer);
        mark(stamp, ProfBucket::Fetch);
        stage::squash::handle_flushes(
            &mut self.st,
            self.engine.as_mut(),
            &mut self.tracer,
            &mut self.scratch,
        );
        stage::squash::apply_rgid_reset(&mut self.st, self.engine.as_mut());
        mark(stamp, ProfBucket::Squash);
        self.st.account.accrue(committed, blame, self.st.cfg.commit_width as u64);
        self.st.cycle += 1;
        if self.sampler.due(self.st.cycle) {
            self.take_sample();
        }
        #[cfg(debug_assertions)]
        {
            let stride = check::check_stride();
            if stride > 0 && self.st.cycle.is_multiple_of(stride) {
                check::assert_sweep(&self.st, self.engine.as_ref(), &mut self.scratch);
            }
        }
    }

    /// Arms the self-profiler: one cycle in every `stride` is stamped
    /// per-stage, and the checkpoint/fast-forward paths are timed
    /// whole-call (see [`crate::prof`]). `0` (the default) disables it.
    /// Resets anything previously accumulated.
    ///
    /// Profiling is strictly out-of-band: simulation results, traces,
    /// and checkpoints are byte-identical with it on or off.
    pub fn set_profiling(&mut self, stride: u64) {
        self.prof.set_stride(stride);
    }

    /// A snapshot of the wall-clock profile accumulated since
    /// [`Simulator::set_profiling`] (all zeros when profiling is off).
    pub fn profile_report(&self) -> ProfReport {
        self.prof.report()
    }

    fn take_sample(&mut self) {
        let cumulative = Sample {
            cycle: self.st.cycle,
            insts: self.st.stats.committed_instructions,
            mispredicts: self.st.stats.mispredictions,
            squashed: self.st.stats.squashed_instructions,
            grants: self.st.grants_total,
            l1_misses: self.st.hier.l1.misses(),
            squash_slots: self.st.account.get(Category::SquashBranch),
        };
        let delta = self.sampler.record(cumulative);
        self.tracer.emit(TraceEvent::Sample(delta));
    }

    /// Sweeps the full machine state against every invariant
    /// [`Rule`](crate::check::Rule), returning all violations found
    /// (empty for a healthy pipeline).
    ///
    /// Debug builds run this every cycle (see `MSSR_CHECK_STRIDE` on
    /// [`check::check_stride`]) and after every squash, panicking on the
    /// first violation; the sweep itself is available in every build for
    /// tests and tools.
    pub fn invariant_violations(&self) -> Vec<Violation> {
        check::machine_violations(&self.st, self.engine.as_ref())
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore / functional fast-forward
    // ------------------------------------------------------------------

    /// Read access to the branch predictor (warmup-fidelity inspection).
    pub fn bpred(&self) -> &BranchPredictor {
        &self.st.bpred
    }

    /// Read access to the cache hierarchy (warmup-fidelity inspection).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.st.hier
    }

    /// Serializes the complete simulation state — architectural and
    /// microarchitectural, in-flight instructions included — into a
    /// versioned, checksummed envelope (see [`crate::ckpt`]). The
    /// pipeline is captured exactly as it stands, never drained, so a
    /// restored simulator continues bit-identically: same cycle counts,
    /// same statistics, same trace from the restore point onward.
    ///
    /// Instructions are stored by PC and re-fetched from the program at
    /// restore, guarded by a program identity hash in the payload.
    pub fn snapshot(&self) -> Vec<u8> {
        let t0 = self.prof.begin();
        let bytes =
            ckpt::machine::save(&self.st, self.engine.as_ref(), &self.sampler, &self.tracer);
        self.prof.finish(ProfBucket::Ckpt, t0);
        bytes
    }

    /// Restores a snapshot taken by [`Simulator::snapshot`] over this
    /// simulator, which must have been constructed with the same
    /// configuration, program, and engine (checked via identity hashes
    /// in the payload — mismatches are rejected before any state is
    /// touched, as are all envelope corruptions).
    ///
    /// On a mid-payload [`CkptError::Corrupt`] the simulator may be
    /// partially overwritten and must be discarded; no error path leaves
    /// a *silently* inconsistent simulator.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let t0 = self.prof.begin();
        let r = ckpt::machine::restore(
            &mut self.st,
            self.engine.as_mut(),
            &mut self.sampler,
            &mut self.tracer,
            bytes,
        );
        self.prof.finish(ProfBucket::Ckpt, t0);
        r
    }

    /// Re-arms event tracing after restoring a *fast-forward boundary*
    /// snapshot into a run whose trace configuration differs from the
    /// donor's (the serve path shares boundary snapshots across
    /// sampling modes). The checkpoint envelope restores the donor's
    /// trace mask and per-kind counters ([`Tracer`] state) — correct
    /// when resuming the same run, wrong for a recipient that filters
    /// different kinds: without this, a sample-masked run restored from
    /// an unmasked donor records the full event firehose. This zeroes
    /// the counters, installs `mask`, and re-emits the fast-forward
    /// `Ckpt` event a cold run would have produced under the recipient's
    /// own sink and mask, making statistics and event stream
    /// byte-identical to a cold run of this configuration.
    ///
    /// # Panics
    ///
    /// Panics when detailed cycles have already been simulated: mid-run
    /// restores carry event counters that cannot be reconstructed, so
    /// they may only resume under the donor's own configuration.
    pub fn rearm_tracing(&mut self, mask: u64) {
        assert!(
            self.st.cycle == 0,
            "rearm_tracing is only valid at a fast-forward boundary (cycle {})",
            self.st.cycle
        );
        self.tracer.reset_counts();
        self.tracer.set_mask(mask);
        if self.st.stats.ffwd_insts > 0 {
            self.tracer.emit(TraceEvent::Ckpt {
                cycle: self.st.cycle,
                action: CkptAction::Ffwd,
                insts: self.st.stats.ffwd_insts,
            });
        }
    }

    /// Functionally fast-forwards `n` instructions through the shared
    /// architectural step ([`crate::interp`]'s `arch_step` — the same
    /// semantics the interpreter oracle runs), warming the branch
    /// predictor and cache hierarchy along the way, then positions the
    /// fetch unit so detailed simulation resumes at the next PC. Returns
    /// the number of instructions actually executed (fewer than `n` only
    /// when the program halts or leaves its image first).
    ///
    /// Warming fidelity: conditional-branch state (bimodal, TAGE tables,
    /// global history) is updated exactly as a detailed run's commit
    /// stream would, so it matches a drained cycle-accurate run
    /// bit-for-bit; the RAS, BTB, and caches see the *architectural*
    /// stream only, so they diverge from a detailed run by its wrong-path
    /// accesses (pinned in the warmup-fidelity tests).
    ///
    /// The executed instructions are reported as
    /// [`SimStats::ffwd_insts`] / [`SimStats::skipped_cycles`] — they do
    /// not count as committed, so IPC measures the detailed region only.
    ///
    /// # Panics
    ///
    /// Panics unless the simulator is pristine (no cycles simulated, no
    /// instructions renamed): fast-forward replaces the start of the
    /// run, it cannot splice into the middle of one.
    pub fn fast_forward(&mut self, n: u64) -> u64 {
        self.fast_forward_inner(n, None)
    }

    /// Like [`Simulator::fast_forward`], but feeding every executed
    /// instruction into a [`BbvCollector`](crate::bbv::BbvCollector) —
    /// the SimPoint analysis pass. The collector observes the PC of each
    /// instruction and whether it ends a basic block (any control
    /// transfer, or `halt`); warming and stop conditions are identical
    /// to the plain fast-forward, and the plain path pays nothing for
    /// the hook.
    ///
    /// # Panics
    ///
    /// As [`Simulator::fast_forward`].
    pub fn fast_forward_collect(&mut self, n: u64, bbv: &mut crate::bbv::BbvCollector) -> u64 {
        self.fast_forward_inner(n, Some(bbv))
    }

    fn fast_forward_inner(
        &mut self,
        n: u64,
        mut bbv: Option<&mut crate::bbv::BbvCollector>,
    ) -> u64 {
        let bucket = if bbv.is_some() { ProfBucket::Bbv } else { ProfBucket::Ffwd };
        let t0 = self.prof.begin();
        if self.st.bpred.feed_pending() {
            self.install_oracle_feed(n);
        }
        let st = &mut self.st;
        assert!(
            st.cycle == 0 && st.next_seq == 1 && st.stats.committed_instructions == 0,
            "fast_forward requires a pristine simulator"
        );
        let mut pc = st.program.base();
        let mut executed = 0u64;
        while executed < n {
            let Some(&inst) = st.program.fetch(pc) else {
                break; // left the program image; resume detailed fetch here
            };
            let mut fst = FfwdState { rat: &st.rat, prf: &mut st.prf, memory: &mut st.memory };
            let out = arch_step(&st.program, pc, &mut fst).expect("fetch checked above");
            executed += 1;
            if let Some(c) = bbv.as_deref_mut() {
                c.step(pc.addr(), inst.is_control() || out.next.is_none());
            }
            match out.kind {
                ArchKind::Cond { taken } => {
                    // Mirror the detailed lifecycle: predict (speculative
                    // GHR update), recover on mispredict, train at commit.
                    let (pred, meta) = st.bpred.predict_cond(pc);
                    if pred != taken {
                        st.bpred.recover_cond(meta, taken);
                    }
                    st.bpred.train_cond(pc, taken, meta);
                }
                ArchKind::Jalr { target } => {
                    // Probe before updating: a pure read for the
                    // table-based predictors (so the default kinds stay
                    // byte-identical), a cursor consume for the oracle
                    // indirect predictor, keeping its feed aligned with
                    // the architectural jalr stream.
                    let _ = st.bpred.predict_indirect(pc);
                    st.bpred.update_indirect(pc, target);
                }
                ArchKind::Load { addr } | ArchKind::Store { addr } => {
                    let _ = st.hier.access(addr);
                }
                ArchKind::Plain => {}
            }
            if inst.is_call() {
                st.bpred.ras_push(pc.next());
            } else if inst.is_return() {
                let _ = st.bpred.ras_pop();
            }
            match out.next {
                Some(next) => pc = next,
                None => {
                    st.halted = true;
                    break;
                }
            }
        }
        st.fetch_pc = if st.halted { None } else { Some(pc) };
        st.stats.ffwd_insts += executed;
        st.stats.skipped_cycles += executed;
        self.tracer.emit(TraceEvent::Ckpt {
            cycle: self.st.cycle,
            action: CkptAction::Ffwd,
            insts: executed,
        });
        self.prof.finish(bucket, t0);
        executed
    }

    /// Runs until at least `n` instructions have committed (or halt /
    /// the cycle bound). Used by the harness to place checkpoints at
    /// instruction-count boundaries.
    pub fn run_until_insts(&mut self, n: u64) {
        while !self.st.halted
            && self.st.cycle < self.st.cfg.max_cycles
            && self.st.stats.committed_instructions < n
        {
            self.step();
        }
    }
}

/// The RAT/PRF/memory of a pristine pipeline as an [`ArchState`]: reads
/// and writes go through the identity rename mapping, so the fast-forward
/// leaves the architectural values exactly where the detailed pipeline
/// expects them.
struct FfwdState<'a> {
    rat: &'a Rat,
    prf: &'a mut Prf,
    memory: &'a mut MainMemory,
}

impl ArchState for FfwdState<'_> {
    fn reg(&self, a: ArchReg) -> u64 {
        self.prf.read(self.rat.lookup(a))
    }

    fn set_reg(&mut self, a: ArchReg, v: u64) {
        self.prf.write(self.rat.lookup(a), v)
    }

    fn mem_read(&mut self, addr: u64) -> u64 {
        self.memory.read_u64(addr)
    }

    fn mem_write(&mut self, addr: u64, v: u64) {
        self.memory.write_u64(addr, v)
    }

    fn wrap(&self, addr: u64) -> u64 {
        self.memory.wrap(addr)
    }
}
