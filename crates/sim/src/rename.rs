//! Rename-stage state: physical register file, free list with hold
//! counts, register alias table with RGIDs, and the global RGID counters.

use std::collections::VecDeque;

use mssr_isa::{ArchReg, NUM_ARCH_REGS};

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::types::{PhysReg, Rgid};

/// The watched physical-register index from `MSSR_WATCH_PREG`, parsed
/// once: the lookup sits on the rename/writeback hot paths, and an
/// environment probe per register write would both cost time and
/// allocate (the steady-state loop must not).
fn watch_preg() -> Option<usize> {
    use std::sync::OnceLock;
    static WATCH: OnceLock<Option<usize>> = OnceLock::new();
    *WATCH.get_or_init(|| std::env::var("MSSR_WATCH_PREG").ok().and_then(|w| w.parse().ok()))
}

/// The physical register file: values plus ready bits.
#[derive(Clone, Debug)]
pub struct Prf {
    vals: Vec<u64>,
    ready: Vec<bool>,
}

impl Prf {
    /// Creates a PRF with `n` registers, all zero and ready.
    pub fn new(n: usize) -> Prf {
        Prf { vals: vec![0; n], ready: vec![true; n] }
    }

    /// Reads a register's value (defined only when ready, but wrong-path
    /// reads of not-yet-written registers are tolerated and return the
    /// stale value).
    pub fn read(&self, p: PhysReg) -> u64 {
        self.vals[p.index()]
    }

    /// Writes a value and marks the register ready.
    pub fn write(&mut self, p: PhysReg, v: u64) {
        if watch_preg() == Some(p.index()) {
            eprintln!("WATCH write {p} = {v}");
        }
        self.vals[p.index()] = v;
        self.ready[p.index()] = true;
    }

    /// Whether the register's value has been produced.
    pub fn is_ready(&self, p: PhysReg) -> bool {
        self.ready[p.index()]
    }

    /// Marks a freshly-allocated register as not yet produced.
    pub fn clear_ready(&mut self, p: PhysReg) {
        self.ready[p.index()] = false;
    }

    /// Marks a register ready without changing its value (used when a
    /// reuse engine resurrects a preserved wrong-path result).
    pub fn set_ready(&mut self, p: PhysReg) {
        self.ready[p.index()] = true;
    }

    /// Number of physical registers.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether the PRF is empty (never true for a constructed PRF).
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.vals.len() as u64);
        for &v in &self.vals {
            w.u64(v);
        }
        for &r in &self.ready {
            w.bool(r);
        }
    }

    pub(crate) fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let n = r.seq_len(9)?;
        if n != self.vals.len() {
            return Err(CkptError::Corrupt(format!(
                "PRF size {n} in checkpoint, {} configured",
                self.vals.len()
            )));
        }
        for v in &mut self.vals {
            *v = r.u64()?;
        }
        for b in &mut self.ready {
            *b = r.bool()?;
        }
        Ok(())
    }
}

/// The physical-register free list, with per-register *hold counts*.
///
/// A register is on the free list exactly when its hold count is zero.
/// Normal renaming gives the destination register one hold (the "live"
/// hold, released when the mapping dies at commit-overwrite or squash).
/// Reuse engines add further holds via [`FreeList::retain`] to keep
/// squashed-but-executed values alive in the PRF (the paper's §3.3.2
/// register-reservation policy); each hold is dropped with
/// [`FreeList::release`], and the register returns to the free list when
/// the count reaches zero.
#[derive(Clone, Debug)]
pub struct FreeList {
    free: VecDeque<PhysReg>,
    holds: Vec<u32>,
    /// Running sum of `holds`, maintained on every alloc/retain/release
    /// so the per-cycle conservation sweep reads it in O(1).
    total: u64,
}

impl FreeList {
    /// Creates a free list for `phys_regs` registers where the first
    /// `reserved` registers (the initial architectural mappings) start
    /// with one hold and the rest are free.
    pub fn new(phys_regs: usize, reserved: usize) -> FreeList {
        let mut holds = vec![0; phys_regs];
        for h in holds.iter_mut().take(reserved) {
            *h = 1;
        }
        FreeList {
            free: (reserved..phys_regs).map(PhysReg::new).collect(),
            holds,
            total: reserved as u64,
        }
    }

    fn watch(p: PhysReg, what: &str, extra: u32) {
        if watch_preg() == Some(p.index()) {
            eprintln!("WATCH {what} {p} holds={extra}");
        }
    }

    /// Allocates a register with one hold, or `None` if the list is empty.
    pub fn alloc(&mut self) -> Option<PhysReg> {
        let p = self.free.pop_front()?;
        debug_assert_eq!(self.holds[p.index()], 0, "allocated register had live holds");
        self.holds[p.index()] = 1;
        self.total += 1;
        Self::watch(p, "alloc", 1);
        Some(p)
    }

    /// Adds a hold to a register that must currently have at least one.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the register is on the free list.
    pub fn retain(&mut self, p: PhysReg) {
        debug_assert!(self.holds[p.index()] > 0, "retain of a free register {p}");
        self.holds[p.index()] += 1;
        self.total += 1;
        Self::watch(p, "retain", self.holds[p.index()]);
    }

    /// Drops one hold; the register becomes allocatable at zero holds.
    ///
    /// # Panics
    ///
    /// Panics if the register has no holds.
    pub fn release(&mut self, p: PhysReg) {
        let h = &mut self.holds[p.index()];
        assert!(*h > 0, "release of {p} with zero holds");
        *h -= 1;
        self.total -= 1;
        let left = self.holds[p.index()];
        if left == 0 {
            self.free.push_back(p);
        }
        Self::watch(p, "release", left);
    }

    /// Current hold count of a register.
    pub fn holds(&self, p: PhysReg) -> u32 {
        self.holds[p.index()]
    }

    /// Number of allocatable registers.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Number of physical registers this list manages.
    pub fn num_regs(&self) -> usize {
        self.holds.len()
    }

    /// Sum of all hold counts — the conservation side of the
    /// [`Rule::FreeListConservation`](crate::check::Rule) invariant.
    /// O(1): maintained incrementally; [`FreeList::validate`] cross-checks
    /// it against a recomputed sum.
    pub fn total_holds(&self) -> u64 {
        self.total
    }

    /// Internal-consistency check: a register is queued exactly when its
    /// hold count is zero, with no duplicates
    /// ([`Rule::FreeListIntegrity`](crate::check::Rule)).
    pub fn validate(&self) -> Result<(), String> {
        let mut queued = Vec::new();
        self.validate_with(&mut queued)
    }

    /// [`FreeList::validate`] over a caller-provided membership bitmap
    /// (cleared and refilled), so the debug checker's post-squash sweep
    /// allocates nothing in steady state.
    pub fn validate_with(&self, queued: &mut Vec<bool>) -> Result<(), String> {
        queued.clear();
        queued.resize(self.holds.len(), false);
        for &p in &self.free {
            if self.holds[p.index()] != 0 {
                return Err(format!("{p} queued with {} hold(s)", self.holds[p.index()]));
            }
            if queued[p.index()] {
                return Err(format!("{p} queued twice"));
            }
            queued[p.index()] = true;
        }
        let mut zero_holds = 0;
        let mut sum: u64 = 0;
        for &h in &self.holds {
            zero_holds += usize::from(h == 0);
            sum += u64::from(h);
        }
        if zero_holds != self.free.len() {
            return Err(format!(
                "{zero_holds} register(s) with zero holds but {} queued",
                self.free.len()
            ));
        }
        if sum != self.total {
            return Err(format!(
                "cached hold total {} diverged from recomputed sum {sum}",
                self.total
            ));
        }
        Ok(())
    }

    /// Serializes hold counts plus the free queue *in order* — allocation
    /// order is architecturally invisible but determinism-critical, so
    /// the queue is restored element-for-element rather than recomputed.
    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.holds.len() as u64);
        for &h in &self.holds {
            w.u32(h);
        }
        w.u64(self.total);
        w.u64(self.free.len() as u64);
        for &p in &self.free {
            w.preg(p);
        }
    }

    pub(crate) fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let n = r.seq_len(4)?;
        if n != self.holds.len() {
            return Err(CkptError::Corrupt(format!(
                "free list of {n} registers in checkpoint, {} configured",
                self.holds.len()
            )));
        }
        for h in &mut self.holds {
            *h = r.u32()?;
        }
        self.total = r.u64()?;
        let q = r.seq_len(2)?;
        self.free.clear();
        for _ in 0..q {
            let p = r.preg()?;
            if p.index() >= self.holds.len() {
                return Err(CkptError::Corrupt(format!("queued {p} out of range")));
            }
            self.free.push_back(p);
        }
        self.validate().map_err(CkptError::Corrupt)
    }
}

/// The register alias table: the architectural-to-physical mapping plus
/// the RGID tagged onto each mapping (paper §3.1).
#[derive(Clone, Debug)]
pub struct Rat {
    map: Vec<PhysReg>,
    rgid: Vec<Rgid>,
}

impl Rat {
    /// Creates the initial identity mapping (arch register `i` → physical
    /// register `i`) with RGID 0 on every mapping, matching the paper's
    /// walkthrough (Figure 5 starts all registers at RGID 0).
    pub fn new() -> Rat {
        Rat {
            map: (0..NUM_ARCH_REGS).map(PhysReg::new).collect(),
            rgid: vec![Rgid::new(0); NUM_ARCH_REGS],
        }
    }

    /// Current physical mapping of an architectural register.
    pub fn lookup(&self, a: ArchReg) -> PhysReg {
        self.map[a.index()]
    }

    /// Current RGID of an architectural register's mapping.
    pub fn rgid(&self, a: ArchReg) -> Rgid {
        self.rgid[a.index()]
    }

    /// Installs a new mapping with its RGID; returns the previous pair
    /// (recorded in the ROB for rollback).
    pub fn install(&mut self, a: ArchReg, p: PhysReg, g: Rgid) -> (PhysReg, Rgid) {
        let prev = (self.map[a.index()], self.rgid[a.index()]);
        let w = watch_preg();
        if w.is_some() && (w == Some(p.index()) || w == Some(prev.0.index())) {
            eprintln!("WATCH install {a}: {p} {g} (prev {} {})", prev.0, prev.1);
        }
        self.map[a.index()] = p;
        self.rgid[a.index()] = g;
        prev
    }

    /// Restores a previous mapping during rollback.
    pub fn restore(&mut self, a: ArchReg, p: PhysReg, g: Rgid) {
        if watch_preg() == Some(p.index()) {
            eprintln!("WATCH restore {a}: {p} {g}");
        }
        self.map[a.index()] = p;
        self.rgid[a.index()] = g;
    }

    /// Re-tags the current mapping with a new RGID without changing the
    /// physical register.
    ///
    /// Used to lazily revive mappings whose RGID was nulled by a global
    /// reset: the mapping (and its value) is unchanged, so tagging it
    /// with a fresh, never-used generation is sound — it merely lets
    /// future reuse tests compare it again. Applied when the register is
    /// next read at rename.
    pub fn retag(&mut self, a: ArchReg, g: Rgid) {
        self.rgid[a.index()] = g;
    }

    /// Nulls every mapping's RGID (global RGID reset, paper §3.3.2: after
    /// a reset, pre-reset mappings must never pass a reuse test).
    pub fn null_all_rgids(&mut self) {
        for g in &mut self.rgid {
            *g = Rgid::NULL;
        }
    }

    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        for i in 0..NUM_ARCH_REGS {
            w.preg(self.map[i]);
            w.rgid(self.rgid[i]);
        }
    }

    pub(crate) fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        for i in 0..NUM_ARCH_REGS {
            self.map[i] = r.preg()?;
            self.rgid[i] = r.rgid()?;
        }
        Ok(())
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::new()
    }
}

/// The global per-architectural-register RGID counters.
///
/// Counters are **not** checkpointed or rolled back (paper §3.1): they do
/// not represent execution state, only uniqueness of mappings across both
/// correct and wrong paths. On overflow the mapping receives the null
/// RGID and an overflow event is counted; a global reset re-zeros the
/// counters (the pipeline simultaneously nulls all live RGID state).
#[derive(Clone, Debug)]
pub struct RgidAlloc {
    counters: Vec<u16>,
    /// Number of distinct non-null values (`2^bits - 1`).
    limit: u16,
    overflows: u64,
}

impl RgidAlloc {
    /// Creates counters for all architectural registers with `limit`
    /// usable values per register.
    pub fn new(limit: u16) -> RgidAlloc {
        RgidAlloc { counters: vec![0; NUM_ARCH_REGS], limit, overflows: 0 }
    }

    /// Allocates the next RGID for `a`. Returns [`Rgid::NULL`] (and counts
    /// an overflow) once the counter exhausts its value space; null is
    /// sticky until [`RgidAlloc::reset`].
    pub fn next(&mut self, a: ArchReg) -> Rgid {
        let c = &mut self.counters[a.index()];
        if *c + 1 >= self.limit {
            self.overflows += 1;
            return Rgid::NULL;
        }
        *c += 1;
        Rgid::new(*c)
    }

    /// Total overflow events since the last reset.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// The counter's current value for `a` — the highest non-null RGID
    /// ever allocated since the last reset (an upper bound the invariant
    /// checker holds every live RGID to).
    pub fn current(&self, a: ArchReg) -> u16 {
        self.counters[a.index()]
    }

    /// Counter values for all architectural registers, indexed by
    /// architectural register index.
    pub fn counters(&self) -> &[u16] {
        &self.counters
    }

    /// Global reset: zero all counters and the overflow count.
    pub fn reset(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
        self.overflows = 0;
    }

    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        for &c in &self.counters {
            w.u16(c);
        }
        w.u16(self.limit);
        w.u64(self.overflows);
    }

    pub(crate) fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        for c in &mut self.counters {
            *c = r.u16()?;
        }
        let limit = r.u16()?;
        if limit != self.limit {
            return Err(CkptError::Corrupt(format!(
                "RGID limit {limit} in checkpoint, {} configured",
                self.limit
            )));
        }
        self.overflows = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prf_write_and_ready() {
        let mut prf = Prf::new(8);
        let p = PhysReg::new(3);
        assert!(prf.is_ready(p));
        prf.clear_ready(p);
        assert!(!prf.is_ready(p));
        prf.write(p, 99);
        assert!(prf.is_ready(p));
        assert_eq!(prf.read(p), 99);
        prf.clear_ready(p);
        prf.set_ready(p);
        assert_eq!(prf.read(p), 99, "set_ready preserves the value");
        assert!(!prf.is_empty());
        assert_eq!(prf.len(), 8);
    }

    #[test]
    fn freelist_alloc_release_cycle() {
        let mut fl = FreeList::new(8, 4);
        assert_eq!(fl.available(), 4);
        let p = fl.alloc().unwrap();
        assert_eq!(p, PhysReg::new(4));
        assert_eq!(fl.holds(p), 1);
        fl.release(p);
        assert_eq!(fl.holds(p), 0);
        assert_eq!(fl.available(), 4, "returned to the free list");
    }

    #[test]
    fn freelist_holds_keep_register_reserved() {
        let mut fl = FreeList::new(6, 2);
        let p = fl.alloc().unwrap();
        fl.retain(p); // e.g. a squash log keeps the value alive
        fl.release(p); // live hold dies at squash
        assert_eq!(fl.holds(p), 1);
        // Not allocatable while the engine hold exists.
        let mut seen = Vec::new();
        while let Some(q) = fl.alloc() {
            seen.push(q);
        }
        assert!(!seen.contains(&p));
        fl.release(p);
        assert_eq!(fl.holds(p), 0);
    }

    #[test]
    fn freelist_accounting_accessors() {
        let mut fl = FreeList::new(8, 4);
        assert_eq!(fl.num_regs(), 8);
        assert_eq!(fl.total_holds(), 4, "initial mappings hold once each");
        let p = fl.alloc().unwrap();
        fl.retain(p);
        assert_eq!(fl.total_holds(), 6);
        fl.validate().unwrap();
        fl.release(p);
        fl.release(p);
        assert_eq!(fl.total_holds(), 4);
        fl.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "zero holds")]
    fn freelist_double_release_panics() {
        let mut fl = FreeList::new(4, 2);
        let p = fl.alloc().unwrap();
        fl.release(p);
        fl.release(p);
    }

    #[test]
    fn freelist_exhaustion() {
        let mut fl = FreeList::new(4, 2);
        assert!(fl.alloc().is_some());
        assert!(fl.alloc().is_some());
        assert!(fl.alloc().is_none());
    }

    #[test]
    fn rat_install_restore_roundtrip() {
        let mut rat = Rat::new();
        let a = ArchReg::A0;
        assert_eq!(rat.lookup(a), PhysReg::new(a.index()));
        assert_eq!(rat.rgid(a), Rgid::new(0));
        let (pp, pg) = rat.install(a, PhysReg::new(100), Rgid::new(5));
        assert_eq!(pp, PhysReg::new(a.index()));
        assert_eq!(pg, Rgid::new(0));
        assert_eq!(rat.lookup(a), PhysReg::new(100));
        assert_eq!(rat.rgid(a), Rgid::new(5));
        rat.restore(a, pp, pg);
        assert_eq!(rat.lookup(a), PhysReg::new(a.index()));
        assert_eq!(rat.rgid(a), Rgid::new(0));
    }

    #[test]
    fn rat_null_all() {
        let mut rat = Rat::new();
        rat.install(ArchReg::A1, PhysReg::new(70), Rgid::new(9));
        rat.null_all_rgids();
        assert!(rat.rgid(ArchReg::A1).is_null());
        assert!(rat.rgid(ArchReg::ZERO).is_null());
        assert_eq!(rat.lookup(ArchReg::A1), PhysReg::new(70), "mapping untouched");
    }

    #[test]
    fn rgid_counters_increment_per_register() {
        let mut al = RgidAlloc::new(63);
        assert_eq!(al.next(ArchReg::A0), Rgid::new(1));
        assert_eq!(al.next(ArchReg::A0), Rgid::new(2));
        assert_eq!(al.next(ArchReg::A1), Rgid::new(1), "independent counters");
    }

    #[test]
    fn rgid_overflow_is_sticky_null_until_reset() {
        let mut al = RgidAlloc::new(4); // values 1..=3 usable
        assert_eq!(al.next(ArchReg::T0), Rgid::new(1));
        assert_eq!(al.next(ArchReg::T0), Rgid::new(2));
        assert_eq!(al.next(ArchReg::T0), Rgid::new(3));
        assert!(al.next(ArchReg::T0).is_null());
        assert!(al.next(ArchReg::T0).is_null(), "sticky");
        assert_eq!(al.overflows(), 2);
        al.reset();
        assert_eq!(al.overflows(), 0);
        assert_eq!(al.next(ArchReg::T0), Rgid::new(1));
    }
}
