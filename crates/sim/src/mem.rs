//! Data memory: flat main memory, set-associative caches, and the
//! two-level hierarchy latency model.

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::config::{CacheConfig, SimConfig};

/// Page granule of the sparse checkpoint memory encoding.
const CKPT_PAGE: usize = 4096;

/// Flat, byte-addressable simulated main memory.
///
/// Addresses are wrapped into the configured power-of-two window so that
/// wrong-path accesses with garbage addresses (a normal occurrence in an
/// execution-driven simulator that executes mispredicted paths) never
/// escape the simulated address space.
#[derive(Clone, Debug)]
pub struct MainMemory {
    data: Vec<u8>,
    mask: u64,
}

impl MainMemory {
    /// Allocates `size` bytes of zeroed memory.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two.
    pub fn new(size: usize) -> MainMemory {
        assert!(size.is_power_of_two(), "memory size must be a power of two");
        MainMemory { data: vec![0; size], mask: size as u64 - 1 }
    }

    /// Wraps an arbitrary 64-bit address into the memory window.
    pub fn wrap(&self, addr: u64) -> u64 {
        addr & self.mask
    }

    /// Reads a little-endian 64-bit word. The address is wrapped; reads
    /// that straddle the wrap point see the window as circular.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.data[self.wrap(addr.wrapping_add(i as u64)) as usize];
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian 64-bit word at a wrapped address.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            let a = self.wrap(addr.wrapping_add(i as u64)) as usize;
            self.data[a] = *b;
        }
    }

    /// Memory window size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Serializes the memory image sparsely: all-zero 4 KiB pages are
    /// skipped, so a checkpoint costs space proportional to the touched
    /// footprint, not the configured window.
    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.data.len() as u64);
        let pages = self.data.chunks(CKPT_PAGE);
        let nonzero = pages.clone().filter(|p| p.iter().any(|&b| b != 0)).count();
        w.u64(nonzero as u64);
        for (i, page) in pages.enumerate() {
            if page.iter().any(|&b| b != 0) {
                w.u64(i as u64);
                w.bytes(page);
            }
        }
    }

    /// Restores the memory image, zeroing everything not present in the
    /// checkpoint (restore is wholesale, never a partial overlay).
    pub(crate) fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let size = r.u64()? as usize;
        if size != self.data.len() {
            return Err(CkptError::Corrupt(format!(
                "memory window of {size} bytes in checkpoint, {} configured",
                self.data.len()
            )));
        }
        self.data.fill(0);
        let pages = r.seq_len(16)?;
        for _ in 0..pages {
            let i = r.u64()? as usize;
            let bytes = r.bytes()?;
            let start = i
                .checked_mul(CKPT_PAGE)
                .filter(|&s| s < size)
                .ok_or_else(|| CkptError::Corrupt(format!("memory page {i} outside the window")))?;
            if bytes.len() != CKPT_PAGE.min(size - start) {
                return Err(CkptError::Corrupt(format!(
                    "memory page {i} has {} bytes",
                    bytes.len()
                )));
            }
            self.data[start..start + bytes.len()].copy_from_slice(bytes);
        }
        Ok(())
    }
}

/// One set-associative, LRU cache level (tag store only — the latency
/// model does not move data).
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// `tags[set][way]` — `None` is an invalid way.
    tags: Vec<Vec<Option<u64>>>,
    /// `lru[set][way]` — larger is more recently used.
    lru: Vec<Vec<u64>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets();
        Cache {
            cfg,
            tags: vec![vec![None; cfg.ways]; sets],
            lru: vec![vec![0; cfg.ways]; sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes as u64;
        let set = (line as usize) & (self.cfg.sets() - 1);
        let tag = line / self.cfg.sets() as u64;
        (set, tag)
    }

    /// Accesses `addr`, allocating the line on a miss (LRU victim).
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        for way in 0..self.cfg.ways {
            if self.tags[set][way] == Some(tag) {
                self.lru[set][way] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        // Fill the LRU (or first invalid) way.
        let victim = (0..self.cfg.ways)
            .min_by_key(
                |&w| if self.tags[set][w].is_none() { (0, 0) } else { (1, self.lru[set][w]) },
            )
            .expect("cache has at least one way");
        self.tags[set][victim] = Some(tag);
        self.lru[set][victim] = self.tick;
        false
    }

    /// Whether `addr` is currently resident (no LRU update, no allocation).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.tags[set].contains(&Some(tag))
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Access latency of this level.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    /// The resident line numbers (address / line size), sorted — the
    /// warmup-fidelity tests compare these between a functional warmup
    /// and a cycle-accurate run.
    pub fn resident_lines(&self) -> Vec<u64> {
        let sets = self.cfg.sets() as u64;
        let mut out: Vec<u64> = self
            .tags
            .iter()
            .enumerate()
            .flat_map(|(set, ways)| ways.iter().flatten().map(move |&tag| tag * sets + set as u64))
            .collect();
        out.sort_unstable();
        out
    }

    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.cfg.sets() as u64);
        w.u64(self.cfg.ways as u64);
        w.u64(self.tick);
        w.u64(self.hits);
        w.u64(self.misses);
        for (set_tags, set_lru) in self.tags.iter().zip(&self.lru) {
            for (tag, lru) in set_tags.iter().zip(set_lru) {
                w.opt_u64(*tag);
                w.u64(*lru);
            }
        }
    }

    pub(crate) fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let (sets, ways) = (r.u64()? as usize, r.u64()? as usize);
        if sets != self.cfg.sets() || ways != self.cfg.ways {
            return Err(CkptError::Corrupt(format!(
                "cache geometry {sets}x{ways} in checkpoint, {}x{} configured",
                self.cfg.sets(),
                self.cfg.ways
            )));
        }
        self.tick = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        for (set_tags, set_lru) in self.tags.iter_mut().zip(&mut self.lru) {
            for (tag, lru) in set_tags.iter_mut().zip(set_lru.iter_mut()) {
                *tag = r.opt_u64()?;
                *lru = r.u64()?;
            }
        }
        Ok(())
    }
}

/// Two-level cache hierarchy plus DRAM, returning access latencies.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// L1 data cache.
    pub l1: Cache,
    /// Unified L2 cache.
    pub l2: Cache,
    dram_latency: u64,
}

impl Hierarchy {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: &SimConfig) -> Hierarchy {
        Hierarchy {
            l1: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            dram_latency: cfg.dram_latency,
        }
    }

    /// Performs an access and returns its total latency in cycles:
    /// L1 hit → L1 latency; L2 hit → L1+L2; miss everywhere → L1+L2+DRAM.
    /// Lines are allocated at every missed level (write-allocate).
    pub fn access(&mut self, addr: u64) -> u64 {
        if self.l1.access(addr) {
            return self.l1.latency();
        }
        if self.l2.access(addr) {
            return self.l1.latency() + self.l2.latency();
        }
        self.l1.latency() + self.l2.latency() + self.dram_latency
    }

    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        self.l1.ckpt_save(w);
        self.l2.ckpt_save(w);
    }

    pub(crate) fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.l1.ckpt_load(r)?;
        self.l2.ckpt_load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> Cache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        Cache::new(CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64, latency: 3 })
    }

    #[test]
    fn memory_read_write_roundtrip() {
        let mut m = MainMemory::new(1 << 16);
        m.write_u64(0x100, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(0x100), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(0x108), 0, "adjacent word untouched");
    }

    #[test]
    fn memory_wraps_garbage_addresses() {
        let mut m = MainMemory::new(1 << 12);
        m.write_u64(u64::MAX - 3, 7); // wraps
        assert_eq!(m.wrap(1 << 12), 0);
        assert_eq!(m.wrap((1 << 12) + 5), 5);
        // Reading back through the wrapped alias sees the same bytes.
        assert_eq!(m.read_u64(u64::MAX - 3), 7);
    }

    #[test]
    fn memory_unaligned_overlap() {
        let mut m = MainMemory::new(1 << 12);
        m.write_u64(0, 0x0102_0304_0506_0708);
        // Overlapping read shifted by one byte.
        assert_eq!(m.read_u64(1) & 0xff, 0x07);
    }

    #[test]
    fn cache_hit_after_fill() {
        let mut c = tiny_cache();
        assert!(!c.access(0x0), "cold miss");
        assert!(c.access(0x0), "now resident");
        assert!(c.access(0x3f), "same line");
        assert!(!c.access(0x40), "next line misses");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn cache_lru_evicts_least_recent() {
        let mut c = tiny_cache();
        // Three lines mapping to the same set (set stride = 4 lines * 64B = 256B).
        let (a, b, d) = (0x000, 0x100, 0x200);
        c.access(a);
        c.access(b);
        c.access(a); // a more recent than b
        assert!(!c.access(d), "fills set, evicting b");
        assert!(c.probe(a), "a survives");
        assert!(!c.probe(b), "b evicted");
        assert!(c.probe(d));
    }

    #[test]
    fn probe_does_not_allocate() {
        let c = tiny_cache();
        assert!(!c.probe(0x0));
    }

    #[test]
    fn hierarchy_latencies_stack() {
        let cfg = SimConfig::default();
        let mut h = Hierarchy::new(&cfg);
        let cold = h.access(0x1000);
        assert_eq!(cold, 3 + 12 + 120, "cold access reaches DRAM");
        let l1_hit = h.access(0x1000);
        assert_eq!(l1_hit, 3);
        // Evict from L1 by filling its set, then the line should still hit L2.
        // L1: 256 sets, 4 ways; same-set stride = 256 sets * 64 B = 16 KB.
        for i in 1..=4u64 {
            h.access(0x1000 + i * 16 * 1024);
        }
        let l2_hit = h.access(0x1000);
        assert_eq!(l2_hit, 3 + 12, "evicted from L1 but resident in L2");
    }
}
