//! # mssr-sim
//!
//! A cycle-level, execution-driven out-of-order superscalar simulator —
//! the substrate on which the Multi-Stream Squash Reuse mechanism (and
//! its baselines) is evaluated.
//!
//! The model follows the paper's gem5 O3CPU configuration (Table 3):
//!
//! * a decoupled, block-based frontend — bimodal + TAGE prediction, one
//!   prediction block (up to 32 B) per cycle, a latency queue modelling
//!   5 frontend stages;
//! * 8-wide rename over a RAT with per-mapping **RGIDs**, a free list
//!   with *hold counts* (so reuse engines can reserve squashed values),
//!   and precise ROB-walk recovery;
//! * out-of-order issue to 4 ALUs, 2 BRUs and 2 LSUs from 64-entry
//!   reservation stations; 256-entry ROB; 96/96 load/store queues with
//!   store-to-load forwarding and ordering-violation replay;
//! * a 64 KB L1D / 2 MB L2 / DRAM latency hierarchy.
//!
//! Crucially, the simulator **functionally executes wrong paths**: after
//! a misprediction the squashed instructions have already computed real
//! values into physical registers, which is exactly what squash reuse
//! recycles. Reuse mechanisms plug in through the [`ReuseEngine`] trait
//! ([`NoReuse`] is the baseline); the paper's engine lives in the
//! `mssr-core` crate.
//!
//! # Example
//!
//! ```
//! use mssr_isa::{regs::*, Assembler};
//! use mssr_sim::{SimConfig, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Assembler::new();
//! a.li(T0, 0);
//! a.li(T1, 64);
//! a.label("loop");
//! a.addi(T0, T0, 1);
//! a.blt(T0, T1, "loop");
//! a.halt();
//!
//! let mut sim = Simulator::new(SimConfig::default(), a.assemble()?);
//! let stats = sim.run();
//! assert_eq!(stats.committed_instructions, 2 + 64 * 2 + 1);
//! println!("IPC = {:.2}", stats.ipc());
//! # Ok(())
//! # }
//! ```

mod account;
mod bbv;
mod bpred;
mod check;
mod ckpt;
mod config;
mod dump;
mod engine;
mod exec;
mod interp;
mod iq;
mod lsq;
mod mem;
mod pipeline;
mod prof;
mod rename;
mod rob;
mod sample;
mod stage;
mod stats;
mod trace;
mod types;

pub use account::{Category, CycleAccount};
pub use bbv::{BbvCollector, BbvInterval, BbvTrace};
pub use bpred::{
    BpredKind, BranchPredictor, CondPredictor, IndirectPredictor, OracleFeed, PredMeta,
};
pub use check::{
    check_age_order, check_bbv, check_commit_entry, check_conservation, check_cpi_account,
    check_lsq, check_reuse_safety, check_rgids, Rule, Violation,
};
pub use ckpt::{fnv1a64, CkptError, CkptReader, CkptWriter, CKPT_MAGIC, CKPT_VERSION};
pub use config::{CacheConfig, ConfigError, SimConfig};
pub use engine::{
    BlockRange, DstBinding, EngineCtx, NoReuse, PredBlock, RenamedInst, ReuseEngine, ReuseGrant,
    ReuseQuery, SquashEvent, SquashedInst, StageCtx,
};
pub use exec::{alu, branch_taken, mem_addr};
pub use interp::{Interpreter, StopReason};
pub use lsq::{Forward, LqEntry, Lsq, SqEntry};
pub use mem::{Cache, Hierarchy, MainMemory};
pub use pipeline::Simulator;
pub use prof::{Prof, ProfBucket, ProfReport, StageStamp, DEFAULT_STRIDE as PROF_DEFAULT_STRIDE};
pub use rename::{FreeList, Prf, Rat, RgidAlloc};
pub use rob::{BranchOutcome, BranchState, DstInfo, Rob, RobEntry};
pub use sample::{Sample, SampleRing, Sampler, DEFAULT_RING_CAPACITY};
pub use stats::{json_escape, EngineStats, SimStats};
pub use trace::{
    BufferSink, CkptAction, JsonLinesSink, RingSink, TraceEvent, TraceKind, TraceSink,
};
pub use types::{FlushKind, FuClass, PhysReg, Rgid, SeqNum};
