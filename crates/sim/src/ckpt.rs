//! Versioned, checksummed binary checkpoints of simulator state.
//!
//! A checkpoint file is an envelope around an opaque payload:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "MSSRCKPT"
//! 8       4     format version, u32 LE (CKPT_VERSION)
//! 12      8     total file length in bytes, u64 LE (envelope included)
//! 20      ..    payload
//! len-8   8     FNV-1a over bytes [0, len-8), u64 LE
//! ```
//!
//! [`seal`] wraps a payload; [`open`] validates an envelope and returns
//! the payload slice. Validation order is fixed — magic, then version,
//! then length, then checksum — so each corruption mode maps to a
//! distinct [`CkptError`] and a damaged file can never be half-applied:
//! nothing is read from the payload until the whole envelope verifies.
//!
//! The payload codec ([`CkptWriter`] / [`CkptReader`]) is deliberately
//! dumb: little-endian fixed-width integers and length-prefixed byte
//! strings, written and read in lock-step field order. There is no
//! schema evolution within a version; any layout change bumps
//! [`CKPT_VERSION`] and older files are rejected with
//! [`CkptError::BadVersion`] — readers never guess (see DESIGN.md,
//! "Checkpoint format").

use mssr_isa::Pc;

use crate::types::{PhysReg, Rgid, SeqNum};

/// Magic bytes opening every checkpoint file.
pub const CKPT_MAGIC: [u8; 8] = *b"MSSRCKPT";

/// Current checkpoint format version. Bump on any payload layout change.
pub const CKPT_VERSION: u32 = 1;

const ENVELOPE_HEADER: usize = 20;
const CHECKSUM_BYTES: usize = 8;

/// Why a checkpoint was rejected. Every failure mode is distinct and
/// terminal: a checkpoint either restores completely or not at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkptError {
    /// The file is shorter than its header claims (or than the minimum
    /// envelope).
    Truncated { need: usize, have: usize },
    /// The magic bytes are wrong — not a checkpoint file.
    BadMagic,
    /// Written by a different (incompatible) format version.
    BadVersion { found: u32, expect: u32 },
    /// The trailing FNV-1a checksum does not match the contents.
    BadChecksum { stored: u64, computed: u64 },
    /// The snapshot was taken of a different program.
    ProgramMismatch,
    /// The snapshot was taken under a different simulator configuration.
    ConfigMismatch,
    /// The snapshot was taken with a different reuse engine.
    EngineMismatch { found: String, expect: String },
    /// The envelope verified but the payload decoded inconsistently
    /// (a codec bug or a hand-crafted file).
    Corrupt(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Truncated { need, have } => {
                write!(f, "truncated checkpoint: need {need} bytes, have {have}")
            }
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::BadVersion { found, expect } => {
                write!(f, "checkpoint version {found} unsupported (expect {expect})")
            }
            CkptError::BadChecksum { stored, computed } => {
                write!(f, "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}")
            }
            CkptError::ProgramMismatch => write!(f, "checkpoint was taken of a different program"),
            CkptError::ConfigMismatch => {
                write!(f, "checkpoint was taken under a different configuration")
            }
            CkptError::EngineMismatch { found, expect } => {
                write!(f, "checkpoint engine mismatch: found {found:?}, expect {expect:?}")
            }
            CkptError::Corrupt(detail) => write!(f, "corrupt checkpoint payload: {detail}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// 64-bit FNV-1a over a byte slice — the checkpoint checksum and the
/// identity hash used for program/config compatibility checks and grid
/// checkpoint file names.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps a payload in the checkpoint envelope (magic, version, length,
/// trailing checksum).
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let total = ENVELOPE_HEADER + payload.len() + CHECKSUM_BYTES;
    let mut buf = Vec::with_capacity(total);
    buf.extend_from_slice(&CKPT_MAGIC);
    buf.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(total as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = fnv1a64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Validates a checkpoint envelope and returns the payload slice.
/// Checks in order: magic, version, declared length, checksum — so a
/// truncation, a version skew, and a flipped byte each surface as their
/// own [`CkptError`].
pub fn open(buf: &[u8]) -> Result<&[u8], CkptError> {
    if buf.len() < 8 {
        return Err(CkptError::Truncated {
            need: ENVELOPE_HEADER + CHECKSUM_BYTES,
            have: buf.len(),
        });
    }
    if buf[..8] != CKPT_MAGIC {
        return Err(CkptError::BadMagic);
    }
    if buf.len() < ENVELOPE_HEADER {
        return Err(CkptError::Truncated {
            need: ENVELOPE_HEADER + CHECKSUM_BYTES,
            have: buf.len(),
        });
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    if version != CKPT_VERSION {
        return Err(CkptError::BadVersion { found: version, expect: CKPT_VERSION });
    }
    let total = u64::from_le_bytes(buf[12..20].try_into().expect("8 bytes")) as usize;
    if total < ENVELOPE_HEADER + CHECKSUM_BYTES {
        return Err(CkptError::Corrupt(format!("declared length {total} below envelope minimum")));
    }
    if buf.len() < total {
        return Err(CkptError::Truncated { need: total, have: buf.len() });
    }
    if buf.len() > total {
        return Err(CkptError::Corrupt(format!(
            "{} trailing bytes beyond declared length {total}",
            buf.len() - total
        )));
    }
    let body = &buf[..total - CHECKSUM_BYTES];
    let stored = u64::from_le_bytes(buf[total - CHECKSUM_BYTES..].try_into().expect("8 bytes"));
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(CkptError::BadChecksum { stored, computed });
    }
    Ok(&buf[ENVELOPE_HEADER..total - CHECKSUM_BYTES])
}

/// Sequential payload writer: fixed-width little-endian fields and
/// length-prefixed byte strings, in lock-step with [`CkptReader`].
#[derive(Default)]
pub struct CkptWriter {
    buf: Vec<u8>,
}

impl CkptWriter {
    pub fn new() -> CkptWriter {
        CkptWriter::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    pub fn pc(&mut self, pc: Pc) {
        self.u64(pc.addr());
    }

    pub fn opt_pc(&mut self, pc: Option<Pc>) {
        self.opt_u64(pc.map(|p| p.addr()));
    }

    pub fn seq(&mut self, s: SeqNum) {
        self.u64(s.value());
    }

    pub fn preg(&mut self, p: PhysReg) {
        self.u16(p.index() as u16);
    }

    pub fn opt_preg(&mut self, p: Option<PhysReg>) {
        match p {
            Some(p) => {
                self.bool(true);
                self.preg(p);
            }
            None => self.bool(false),
        }
    }

    pub fn rgid(&mut self, g: Rgid) {
        self.u16(g.value());
    }

    pub fn opt_rgid(&mut self, g: Option<Rgid>) {
        match g {
            Some(g) => {
                self.bool(true);
                self.rgid(g);
            }
            None => self.bool(false),
        }
    }

    /// The accumulated payload (no envelope; see [`seal`]).
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sequential payload reader; every accessor is bounds-checked and
/// over-reads report [`CkptError::Truncated`] with exact positions.
pub struct CkptReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CkptReader<'a> {
    pub fn new(payload: &'a [u8]) -> CkptReader<'a> {
        CkptReader { buf: payload, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.buf.len() - self.pos < n {
            return Err(CkptError::Truncated { need: self.pos + n, have: self.buf.len() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::Corrupt(format!("bool byte {b} at offset {}", self.pos - 1))),
        }
    }

    pub fn u16(&mut self) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn i8(&mut self) -> Result<i8, CkptError> {
        Ok(self.u8()? as i8)
    }

    pub fn opt_u64(&mut self) -> Result<Option<u64>, CkptError> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.u64()? as usize;
        self.take(n)
    }

    pub fn str(&mut self) -> Result<String, CkptError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| CkptError::Corrupt("non-UTF-8 string field".into()))
    }

    /// A bounded sequence length: rejects lengths that could not fit in
    /// the remaining payload before any allocation happens.
    pub fn seq_len(&mut self, elem_min_bytes: usize) -> Result<usize, CkptError> {
        let n = self.u64()? as usize;
        let remaining = self.buf.len() - self.pos;
        if elem_min_bytes > 0 && n > remaining / elem_min_bytes {
            return Err(CkptError::Corrupt(format!(
                "sequence of {n} elements cannot fit in {remaining} remaining bytes"
            )));
        }
        Ok(n)
    }

    pub fn pc(&mut self) -> Result<Pc, CkptError> {
        Ok(Pc::new(self.u64()?))
    }

    pub fn opt_pc(&mut self) -> Result<Option<Pc>, CkptError> {
        Ok(self.opt_u64()?.map(Pc::new))
    }

    pub fn seq(&mut self) -> Result<SeqNum, CkptError> {
        Ok(SeqNum::new(self.u64()?))
    }

    pub fn preg(&mut self) -> Result<PhysReg, CkptError> {
        Ok(PhysReg::new(self.u16()? as usize))
    }

    pub fn opt_preg(&mut self) -> Result<Option<PhysReg>, CkptError> {
        Ok(if self.bool()? { Some(self.preg()?) } else { None })
    }

    pub fn rgid(&mut self) -> Result<Rgid, CkptError> {
        let v = self.u16()?;
        Ok(if v == u16::MAX { Rgid::NULL } else { Rgid::new(v) })
    }

    pub fn opt_rgid(&mut self) -> Result<Option<Rgid>, CkptError> {
        Ok(if self.bool()? { Some(self.rgid()?) } else { None })
    }

    /// Asserts the payload was consumed exactly.
    pub fn done(&self) -> Result<(), CkptError> {
        if self.pos != self.buf.len() {
            return Err(CkptError::Corrupt(format!(
                "{} unread payload bytes at offset {}",
                self.buf.len() - self.pos,
                self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_envelope() {
        let mut w = CkptWriter::new();
        w.u8(7);
        w.bool(true);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(0x0123_4567_89ab_cdef);
        w.i8(-5);
        w.opt_u64(None);
        w.opt_u64(Some(42));
        w.str("mssr");
        w.bytes(&[1, 2, 3]);
        let file = seal(&w.finish());

        let payload = open(&file).expect("valid envelope");
        let mut r = CkptReader::new(payload);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.i8().unwrap(), -5);
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        assert_eq!(r.str().unwrap(), "mssr");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.done().expect("fully consumed");
    }

    #[test]
    fn truncation_is_detected_by_length_not_checksum() {
        let file = seal(&[9; 64]);
        for cut in [0, 7, 19, 20, file.len() - 9, file.len() - 1] {
            match open(&file[..cut]) {
                Err(CkptError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_is_distinct() {
        let mut file = seal(&[1, 2, 3]);
        file[0] ^= 0xff;
        assert_eq!(open(&file).unwrap_err(), CkptError::BadMagic);
    }

    #[test]
    fn version_skew_is_detected_before_the_checksum() {
        let mut file = seal(&[1, 2, 3]);
        file[8] = CKPT_VERSION as u8 + 1;
        // No checksum fix-up: the version check must fire first.
        assert_eq!(
            open(&file).unwrap_err(),
            CkptError::BadVersion { found: CKPT_VERSION + 1, expect: CKPT_VERSION }
        );
    }

    #[test]
    fn flipped_byte_is_a_checksum_error() {
        let mut file = seal(&[5; 32]);
        let mid = ENVELOPE_HEADER + 16;
        file[mid] ^= 0x01;
        assert!(matches!(open(&file).unwrap_err(), CkptError::BadChecksum { .. }));
        // Flipping a checksum byte itself is equally fatal.
        let mut file = seal(&[5; 32]);
        let last = file.len() - 1;
        file[last] ^= 0x01;
        assert!(matches!(open(&file).unwrap_err(), CkptError::BadChecksum { .. }));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut file = seal(&[1]);
        file.push(0);
        assert!(matches!(open(&file).unwrap_err(), CkptError::Corrupt(_)));
    }

    #[test]
    fn reader_overrun_reports_truncated() {
        let mut r = CkptReader::new(&[1, 2]);
        assert!(matches!(r.u64(), Err(CkptError::Truncated { need: 8, have: 2 })));
    }

    #[test]
    fn errors_render_distinct_messages() {
        let msgs: Vec<String> = [
            CkptError::Truncated { need: 10, have: 2 },
            CkptError::BadMagic,
            CkptError::BadVersion { found: 9, expect: CKPT_VERSION },
            CkptError::BadChecksum { stored: 1, computed: 2 },
            CkptError::ProgramMismatch,
            CkptError::ConfigMismatch,
            CkptError::EngineMismatch { found: "a".into(), expect: "b".into() },
            CkptError::Corrupt("x".into()),
        ]
        .iter()
        .map(|e| e.to_string())
        .collect();
        for (i, a) in msgs.iter().enumerate() {
            for b in &msgs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
