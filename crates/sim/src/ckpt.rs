//! Versioned, checksummed binary checkpoints of simulator state.
//!
//! A checkpoint file is an envelope around an opaque payload:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "MSSRCKPT"
//! 8       4     format version, u32 LE (CKPT_VERSION)
//! 12      8     total file length in bytes, u64 LE (envelope included)
//! 20      ..    payload
//! len-8   8     FNV-1a over bytes [0, len-8), u64 LE
//! ```
//!
//! [`seal`] wraps a payload; [`open`] validates an envelope and returns
//! the payload slice. Validation order is fixed — magic, then version,
//! then length, then checksum — so each corruption mode maps to a
//! distinct [`CkptError`] and a damaged file can never be half-applied:
//! nothing is read from the payload until the whole envelope verifies.
//!
//! The payload codec ([`CkptWriter`] / [`CkptReader`]) is deliberately
//! dumb: little-endian fixed-width integers and length-prefixed byte
//! strings, written and read in lock-step field order. There is no
//! schema evolution within a version; any layout change bumps
//! [`CKPT_VERSION`] and older files are rejected with
//! [`CkptError::BadVersion`] — readers never guess (see DESIGN.md,
//! "Checkpoint format").

use mssr_isa::Pc;

use crate::types::{PhysReg, Rgid, SeqNum};

/// Magic bytes opening every checkpoint file.
pub const CKPT_MAGIC: [u8; 8] = *b"MSSRCKPT";

/// Current checkpoint format version. Bump on any payload layout change.
pub const CKPT_VERSION: u32 = 2;

const ENVELOPE_HEADER: usize = 20;
const CHECKSUM_BYTES: usize = 8;

/// Why a checkpoint was rejected. Every failure mode is distinct and
/// terminal: a checkpoint either restores completely or not at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkptError {
    /// The file is shorter than its header claims (or than the minimum
    /// envelope).
    Truncated { need: usize, have: usize },
    /// The magic bytes are wrong — not a checkpoint file.
    BadMagic,
    /// Written by a different (incompatible) format version.
    BadVersion { found: u32, expect: u32 },
    /// The trailing FNV-1a checksum does not match the contents.
    BadChecksum { stored: u64, computed: u64 },
    /// The snapshot was taken of a different program.
    ProgramMismatch,
    /// The snapshot was taken under a different simulator configuration.
    ConfigMismatch,
    /// The snapshot was taken with a different reuse engine.
    EngineMismatch { found: String, expect: String },
    /// The envelope verified but the payload decoded inconsistently
    /// (a codec bug or a hand-crafted file).
    Corrupt(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Truncated { need, have } => {
                write!(f, "truncated checkpoint: need {need} bytes, have {have}")
            }
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::BadVersion { found, expect } => {
                write!(f, "checkpoint version {found} unsupported (expect {expect})")
            }
            CkptError::BadChecksum { stored, computed } => {
                write!(f, "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}")
            }
            CkptError::ProgramMismatch => write!(f, "checkpoint was taken of a different program"),
            CkptError::ConfigMismatch => {
                write!(f, "checkpoint was taken under a different configuration")
            }
            CkptError::EngineMismatch { found, expect } => {
                write!(f, "checkpoint engine mismatch: found {found:?}, expect {expect:?}")
            }
            CkptError::Corrupt(detail) => write!(f, "corrupt checkpoint payload: {detail}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// 64-bit FNV-1a over a byte slice — the checkpoint checksum and the
/// identity hash used for program/config compatibility checks and grid
/// checkpoint file names.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps a payload in the checkpoint envelope (magic, version, length,
/// trailing checksum).
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let total = ENVELOPE_HEADER + payload.len() + CHECKSUM_BYTES;
    let mut buf = Vec::with_capacity(total);
    buf.extend_from_slice(&CKPT_MAGIC);
    buf.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(total as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = fnv1a64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Validates a checkpoint envelope and returns the payload slice.
/// Checks in order: magic, version, declared length, checksum — so a
/// truncation, a version skew, and a flipped byte each surface as their
/// own [`CkptError`].
pub fn open(buf: &[u8]) -> Result<&[u8], CkptError> {
    if buf.len() < 8 {
        return Err(CkptError::Truncated {
            need: ENVELOPE_HEADER + CHECKSUM_BYTES,
            have: buf.len(),
        });
    }
    if buf[..8] != CKPT_MAGIC {
        return Err(CkptError::BadMagic);
    }
    if buf.len() < ENVELOPE_HEADER {
        return Err(CkptError::Truncated {
            need: ENVELOPE_HEADER + CHECKSUM_BYTES,
            have: buf.len(),
        });
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    if version != CKPT_VERSION {
        return Err(CkptError::BadVersion { found: version, expect: CKPT_VERSION });
    }
    let total = u64::from_le_bytes(buf[12..20].try_into().expect("8 bytes")) as usize;
    if total < ENVELOPE_HEADER + CHECKSUM_BYTES {
        return Err(CkptError::Corrupt(format!("declared length {total} below envelope minimum")));
    }
    if buf.len() < total {
        return Err(CkptError::Truncated { need: total, have: buf.len() });
    }
    if buf.len() > total {
        return Err(CkptError::Corrupt(format!(
            "{} trailing bytes beyond declared length {total}",
            buf.len() - total
        )));
    }
    let body = &buf[..total - CHECKSUM_BYTES];
    let stored = u64::from_le_bytes(buf[total - CHECKSUM_BYTES..].try_into().expect("8 bytes"));
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(CkptError::BadChecksum { stored, computed });
    }
    Ok(&buf[ENVELOPE_HEADER..total - CHECKSUM_BYTES])
}

/// Sequential payload writer: fixed-width little-endian fields and
/// length-prefixed byte strings, in lock-step with [`CkptReader`].
#[derive(Default)]
pub struct CkptWriter {
    buf: Vec<u8>,
}

impl CkptWriter {
    pub fn new() -> CkptWriter {
        CkptWriter::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    pub fn pc(&mut self, pc: Pc) {
        self.u64(pc.addr());
    }

    pub fn opt_pc(&mut self, pc: Option<Pc>) {
        self.opt_u64(pc.map(|p| p.addr()));
    }

    pub fn seq(&mut self, s: SeqNum) {
        self.u64(s.value());
    }

    pub fn preg(&mut self, p: PhysReg) {
        self.u16(p.index() as u16);
    }

    pub fn opt_preg(&mut self, p: Option<PhysReg>) {
        match p {
            Some(p) => {
                self.bool(true);
                self.preg(p);
            }
            None => self.bool(false),
        }
    }

    pub fn rgid(&mut self, g: Rgid) {
        self.u16(g.value());
    }

    pub fn opt_rgid(&mut self, g: Option<Rgid>) {
        match g {
            Some(g) => {
                self.bool(true);
                self.rgid(g);
            }
            None => self.bool(false),
        }
    }

    /// The accumulated payload (no envelope; see [`seal`]).
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sequential payload reader; every accessor is bounds-checked and
/// over-reads report [`CkptError::Truncated`] with exact positions.
pub struct CkptReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CkptReader<'a> {
    pub fn new(payload: &'a [u8]) -> CkptReader<'a> {
        CkptReader { buf: payload, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.buf.len() - self.pos < n {
            return Err(CkptError::Truncated { need: self.pos + n, have: self.buf.len() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::Corrupt(format!("bool byte {b} at offset {}", self.pos - 1))),
        }
    }

    pub fn u16(&mut self) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn i8(&mut self) -> Result<i8, CkptError> {
        Ok(self.u8()? as i8)
    }

    pub fn opt_u64(&mut self) -> Result<Option<u64>, CkptError> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.u64()? as usize;
        self.take(n)
    }

    pub fn str(&mut self) -> Result<String, CkptError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| CkptError::Corrupt("non-UTF-8 string field".into()))
    }

    /// A bounded sequence length: rejects lengths that could not fit in
    /// the remaining payload before any allocation happens.
    pub fn seq_len(&mut self, elem_min_bytes: usize) -> Result<usize, CkptError> {
        let n = self.u64()? as usize;
        let remaining = self.buf.len() - self.pos;
        if elem_min_bytes > 0 && n > remaining / elem_min_bytes {
            return Err(CkptError::Corrupt(format!(
                "sequence of {n} elements cannot fit in {remaining} remaining bytes"
            )));
        }
        Ok(n)
    }

    pub fn pc(&mut self) -> Result<Pc, CkptError> {
        Ok(Pc::new(self.u64()?))
    }

    pub fn opt_pc(&mut self) -> Result<Option<Pc>, CkptError> {
        Ok(self.opt_u64()?.map(Pc::new))
    }

    pub fn seq(&mut self) -> Result<SeqNum, CkptError> {
        Ok(SeqNum::new(self.u64()?))
    }

    pub fn preg(&mut self) -> Result<PhysReg, CkptError> {
        Ok(PhysReg::new(self.u16()? as usize))
    }

    pub fn opt_preg(&mut self) -> Result<Option<PhysReg>, CkptError> {
        Ok(if self.bool()? { Some(self.preg()?) } else { None })
    }

    pub fn rgid(&mut self) -> Result<Rgid, CkptError> {
        let v = self.u16()?;
        Ok(if v == u16::MAX { Rgid::NULL } else { Rgid::new(v) })
    }

    pub fn opt_rgid(&mut self) -> Result<Option<Rgid>, CkptError> {
        Ok(if self.bool()? { Some(self.rgid()?) } else { None })
    }

    /// Asserts the payload was consumed exactly.
    pub fn done(&self) -> Result<(), CkptError> {
        if self.pos != self.buf.len() {
            return Err(CkptError::Corrupt(format!(
                "{} unread payload bytes at offset {}",
                self.buf.len() - self.pos,
                self.pos
            )));
        }
        Ok(())
    }
}

/// Machine-state serialization: the payload layout of a full simulator
/// checkpoint, decomposed per pipeline stage. Field order is the format —
/// [`save`] and [`restore`] call the per-stage `save_*`/`load_*` pairs in
/// the same fixed sequence, and any layout change bumps `CKPT_VERSION`.
pub(crate) mod machine {
    use std::cmp::Reverse;

    use mssr_isa::{ArchReg, Inst, Pc, Program};

    use super::{CkptError, CkptReader, CkptWriter};
    use crate::bpred::PredMeta;
    use crate::config::SimConfig;
    use crate::engine::ReuseEngine;
    use crate::lsq::{LqEntry, Lsq, SqEntry};
    use crate::rob::{BranchOutcome, BranchState, DstInfo, Rob, RobEntry};
    use crate::sample::Sampler;
    use crate::stage::{FrontInst, MachineState, PendingFlush};
    use crate::trace::{CkptAction, TraceEvent, Tracer};
    use crate::types::{FlushKind, SeqNum};

    /// Payload terminator, checked before [`CkptReader::done`] so a codec
    /// drift shows up as a missing marker rather than a trailing-bytes
    /// error.
    const CKPT_END: u32 = 0x444e_4521;

    /// A stable identity hash of the loaded program (base address plus
    /// every instruction), used to reject checkpoints taken of a
    /// different program. In-flight instructions are checkpointed by PC
    /// only and re-fetched through this guard.
    fn program_hash(program: &Program) -> u64 {
        let mut text = program.base().addr().to_string();
        for (pc, inst) in program.iter() {
            text.push_str(&format!("|{}:{inst:?}", pc.addr()));
        }
        super::fnv1a64(text.as_bytes())
    }

    /// A stable identity hash of the simulator configuration. Structure
    /// sizes (ROB, queues, caches) shape the serialized state, so a
    /// checkpoint only restores under the exact configuration that took
    /// it; the `Debug` rendering covers every field.
    fn config_hash(cfg: &SimConfig) -> u64 {
        super::fnv1a64(format!("{cfg:?}").as_bytes())
    }

    fn refetch(program: &Program, pc: Pc) -> Result<Inst, CkptError> {
        program
            .fetch(pc)
            .copied()
            .ok_or_else(|| CkptError::Corrupt(format!("checkpointed PC {pc} outside the program")))
    }

    fn flush_kind_code(k: FlushKind) -> u8 {
        match k {
            FlushKind::BranchMispredict => 0,
            FlushKind::MemoryOrder => 1,
            FlushKind::ReuseVerification => 2,
        }
    }

    fn flush_kind_from(b: u8) -> Result<FlushKind, CkptError> {
        match b {
            0 => Ok(FlushKind::BranchMispredict),
            1 => Ok(FlushKind::MemoryOrder),
            2 => Ok(FlushKind::ReuseVerification),
            _ => Err(CkptError::Corrupt(format!("unknown flush kind byte {b}"))),
        }
    }

    fn load_arch_reg(r: &mut CkptReader) -> Result<ArchReg, CkptError> {
        let i = r.u8()? as usize;
        ArchReg::all()
            .nth(i)
            .ok_or_else(|| CkptError::Corrupt(format!("arch register index {i} out of range")))
    }

    // --- Control scalars, statistics, and the CPI-stack account -------

    fn save_control(st: &MachineState, w: &mut CkptWriter) {
        w.u64(st.cycle);
        w.u64(st.next_seq);
        w.u64(st.squash_ctr);
        w.bool(st.halted);
        w.opt_pc(st.fetch_pc);
        w.u64(st.fetch_resume_at);
        w.bool(st.rgid_reset_requested);
        w.u64(st.rgid_overflows_total);
        w.u64(st.rgid_resets_total);
        w.u64(st.grants_total);
        match st.refill_blame {
            None => w.bool(false),
            Some((kind, seq)) => {
                w.bool(true);
                w.u8(flush_kind_code(kind));
                w.seq(seq);
            }
        }

        // Cumulative statistics. Cache counters live in the hierarchy
        // section and engine counters in the engine blob; `stats()`
        // recomposes them, so only the pipeline-owned counters go here.
        for v in [
            st.stats.committed_instructions,
            st.stats.committed_branches,
            st.stats.committed_cond_branches,
            st.stats.mispredictions,
            st.stats.renamed_instructions,
            st.stats.squashed_instructions,
            st.stats.flushes_branch,
            st.stats.flushes_mem_order,
            st.stats.flushes_reuse_verify,
            st.stats.committed_loads,
            st.stats.committed_stores,
            st.stats.store_forwards,
            st.stats.store_forward_stalls,
            st.stats.snoops,
            st.stats.ffwd_insts,
            st.stats.skipped_cycles,
        ] {
            w.u64(v);
        }

        // CPI-stack account.
        for s in st.account.slots {
            w.u64(s);
        }
        w.u64(st.account.credit_reuse_cycles);
        w.u64(st.account.credit_recon_fetches);
    }

    fn load_control(st: &mut MachineState, r: &mut CkptReader) -> Result<(), CkptError> {
        st.cycle = r.u64()?;
        st.next_seq = r.u64()?;
        st.squash_ctr = r.u64()?;
        st.halted = r.bool()?;
        st.fetch_pc = r.opt_pc()?;
        st.fetch_resume_at = r.u64()?;
        st.rgid_reset_requested = r.bool()?;
        st.rgid_overflows_total = r.u64()?;
        st.rgid_resets_total = r.u64()?;
        st.grants_total = r.u64()?;
        st.refill_blame =
            if r.bool()? { Some((flush_kind_from(r.u8()?)?, r.seq()?)) } else { None };

        st.stats.committed_instructions = r.u64()?;
        st.stats.committed_branches = r.u64()?;
        st.stats.committed_cond_branches = r.u64()?;
        st.stats.mispredictions = r.u64()?;
        st.stats.renamed_instructions = r.u64()?;
        st.stats.squashed_instructions = r.u64()?;
        st.stats.flushes_branch = r.u64()?;
        st.stats.flushes_mem_order = r.u64()?;
        st.stats.flushes_reuse_verify = r.u64()?;
        st.stats.committed_loads = r.u64()?;
        st.stats.committed_stores = r.u64()?;
        st.stats.store_forwards = r.u64()?;
        st.stats.store_forward_stalls = r.u64()?;
        st.stats.snoops = r.u64()?;
        st.stats.ffwd_insts = r.u64()?;
        st.stats.skipped_cycles = r.u64()?;

        for s in &mut st.account.slots {
            *s = r.u64()?;
        }
        st.account.credit_reuse_cycles = r.u64()?;
        st.account.credit_recon_fetches = r.u64()?;
        Ok(())
    }

    // --- Fetch stage: predictor and in-flight frontend queue -----------

    fn save_fetch(st: &MachineState, w: &mut CkptWriter) {
        st.bpred.ckpt_save(w);

        // Frontend queue (instructions by PC).
        w.u64(st.frontend_q.len() as u64);
        for fi in &st.frontend_q {
            w.u64(fi.ready_cycle);
            w.pc(fi.pc);
            w.bool(fi.pred_taken);
            w.pc(fi.pred_next);
            w.u64(fi.meta.ghr_before);
            w.u64(fi.ghr_before);
            w.u64(fi.ras_sp_before);
        }
    }

    fn load_fetch(st: &mut MachineState, r: &mut CkptReader) -> Result<(), CkptError> {
        st.bpred.ckpt_load(r)?;

        let n = r.seq_len(34)?;
        st.frontend_q.clear();
        for _ in 0..n {
            let ready_cycle = r.u64()?;
            let pc = r.pc()?;
            let inst = refetch(&st.program, pc)?;
            st.frontend_q.push_back(FrontInst {
                ready_cycle,
                pc,
                inst,
                pred_taken: r.bool()?,
                pred_next: r.pc()?,
                meta: PredMeta { ghr_before: r.u64()? },
                ghr_before: r.u64()?,
                ras_sp_before: r.u64()?,
            });
        }
        Ok(())
    }

    // --- Rename stage: RAT, free list, PRF, RGID allocator -------------

    fn save_rename(st: &MachineState, w: &mut CkptWriter) {
        st.rat.ckpt_save(w);
        st.free_list.ckpt_save(w);
        st.prf.ckpt_save(w);
        st.rgids.ckpt_save(w);
    }

    fn load_rename(st: &mut MachineState, r: &mut CkptReader) -> Result<(), CkptError> {
        st.rat.ckpt_load(r)?;
        st.free_list.ckpt_load(r)?;
        st.prf.ckpt_load(r)?;
        st.rgids.ckpt_load(r)?;
        Ok(())
    }

    // --- Commit stage: the reorder buffer -------------------------------

    fn save_rob_entry(w: &mut CkptWriter, e: &RobEntry) {
        w.seq(e.seq);
        w.pc(e.pc);
        match e.dst {
            None => w.bool(false),
            Some(d) => {
                w.bool(true);
                w.u8(d.arch.index() as u8);
                w.preg(d.new_preg);
                w.preg(d.prev_preg);
                w.rgid(d.new_rgid);
                w.rgid(d.prev_rgid);
            }
        }
        for p in e.src_pregs {
            w.opt_preg(p);
        }
        for g in e.src_rgids {
            w.opt_rgid(g);
        }
        w.bool(e.completed);
        w.bool(e.reused);
        w.bool(e.verify_pending);
        w.bool(e.fwd_stalled);
        w.opt_u64(e.pending_value);
        match e.branch {
            None => w.bool(false),
            Some(b) => {
                w.bool(true);
                w.pc(b.pred_next);
                w.bool(b.pred_taken);
                w.u64(b.meta.ghr_before);
                match b.resolved {
                    None => w.bool(false),
                    Some(o) => {
                        w.bool(true);
                        w.bool(o.taken);
                        w.pc(o.next);
                    }
                }
            }
        }
        w.opt_u64(e.mem_addr);
        w.u64(e.ghr_before);
        w.u64(e.ras_sp_before);
    }

    fn load_rob_entry(r: &mut CkptReader, program: &Program) -> Result<RobEntry, CkptError> {
        let seq = r.seq()?;
        let pc = r.pc()?;
        let inst = refetch(program, pc)?;
        let dst = if r.bool()? {
            Some(DstInfo {
                arch: load_arch_reg(r)?,
                new_preg: r.preg()?,
                prev_preg: r.preg()?,
                new_rgid: r.rgid()?,
                prev_rgid: r.rgid()?,
            })
        } else {
            None
        };
        let src_pregs = [r.opt_preg()?, r.opt_preg()?];
        let src_rgids = [r.opt_rgid()?, r.opt_rgid()?];
        let completed = r.bool()?;
        let reused = r.bool()?;
        let verify_pending = r.bool()?;
        let fwd_stalled = r.bool()?;
        let pending_value = r.opt_u64()?;
        let branch = if r.bool()? {
            let pred_next = r.pc()?;
            let pred_taken = r.bool()?;
            let meta = PredMeta { ghr_before: r.u64()? };
            let resolved = if r.bool()? {
                Some(BranchOutcome { taken: r.bool()?, next: r.pc()? })
            } else {
                None
            };
            Some(BranchState { pred_next, pred_taken, meta, resolved })
        } else {
            None
        };
        Ok(RobEntry {
            seq,
            pc,
            inst,
            dst,
            src_pregs,
            src_rgids,
            completed,
            reused,
            verify_pending,
            fwd_stalled,
            pending_value,
            branch,
            mem_addr: r.opt_u64()?,
            ghr_before: r.u64()?,
            ras_sp_before: r.u64()?,
        })
    }

    fn save_commit(st: &MachineState, w: &mut CkptWriter) {
        w.u64(st.rob.len() as u64);
        for e in st.rob.iter() {
            save_rob_entry(w, e);
        }
    }

    fn load_commit(st: &mut MachineState, r: &mut CkptReader) -> Result<(), CkptError> {
        let n = r.seq_len(40)?;
        if n > st.cfg.rob_size {
            return Err(CkptError::Corrupt(format!(
                "{n} ROB entries in checkpoint, capacity {}",
                st.cfg.rob_size
            )));
        }
        let mut rob = Rob::new(st.cfg.rob_size);
        let mut prev: Option<SeqNum> = None;
        for _ in 0..n {
            let e = load_rob_entry(r, &st.program)?;
            if prev.is_some_and(|p| e.seq <= p) {
                return Err(CkptError::Corrupt("ROB entries out of age order".into()));
            }
            prev = Some(e.seq);
            rob.push(e);
        }
        st.rob = rob;
        Ok(())
    }

    // --- Issue stage: the reservation stations ---------------------------

    fn save_issue(st: &MachineState, w: &mut CkptWriter) {
        st.iq_int.ckpt_save(w);
        st.iq_mem.ckpt_save(w);
    }

    fn load_issue(st: &mut MachineState, r: &mut CkptReader) -> Result<(), CkptError> {
        st.iq_int.ckpt_load(r)?;
        st.iq_mem.ckpt_load(r)?;
        Ok(())
    }

    // --- Execute stage: LSQ, completion events, pending flushes ----------

    fn save_execute(st: &MachineState, w: &mut CkptWriter) {
        w.u64(st.lsq.lq_len() as u64);
        for l in st.lsq.loads() {
            w.seq(l.seq);
            w.opt_u64(l.addr);
            w.bool(l.issued);
            w.opt_u64(l.value);
            w.bool(l.reused);
        }
        w.u64(st.lsq.sq_len() as u64);
        for s in st.lsq.stores() {
            w.seq(s.seq);
            w.opt_u64(s.addr);
            w.opt_u64(s.data);
        }

        // Completion events. Heap iteration order is arbitrary; sort so
        // identical machine states serialize to identical bytes.
        let mut comps: Vec<(u64, u64)> = st.completions.iter().map(|&Reverse(p)| p).collect();
        comps.sort_unstable();
        w.u64(comps.len() as u64);
        for (c, s) in comps {
            w.u64(c);
            w.u64(s);
        }

        w.u64(st.pending_flushes.len() as u64);
        for f in &st.pending_flushes {
            w.seq(f.first_squashed);
            w.pc(f.redirect);
            w.u8(flush_kind_code(f.kind));
            w.seq(f.cause_seq);
            w.pc(f.cause_pc);
        }
    }

    fn load_execute(st: &mut MachineState, r: &mut CkptReader) -> Result<(), CkptError> {
        let nl = r.seq_len(27)?;
        let mut lsq = Lsq::new(st.cfg.lq_size, st.cfg.sq_size);
        if nl > st.cfg.lq_size {
            return Err(CkptError::Corrupt(format!(
                "{nl} load-queue entries in checkpoint, capacity {}",
                st.cfg.lq_size
            )));
        }
        let mut prev: Option<SeqNum> = None;
        for _ in 0..nl {
            let seq = r.seq()?;
            if prev.is_some_and(|p| seq <= p) {
                return Err(CkptError::Corrupt("load queue out of age order".into()));
            }
            prev = Some(seq);
            lsq.push_load(LqEntry {
                seq,
                addr: r.opt_u64()?,
                issued: r.bool()?,
                value: r.opt_u64()?,
                reused: r.bool()?,
            });
        }
        let ns = r.seq_len(26)?;
        if ns > st.cfg.sq_size {
            return Err(CkptError::Corrupt(format!(
                "{ns} store-queue entries in checkpoint, capacity {}",
                st.cfg.sq_size
            )));
        }
        let mut prev: Option<SeqNum> = None;
        for _ in 0..ns {
            let seq = r.seq()?;
            if prev.is_some_and(|p| seq <= p) {
                return Err(CkptError::Corrupt("store queue out of age order".into()));
            }
            prev = Some(seq);
            lsq.push_store(SqEntry { seq, addr: r.opt_u64()?, data: r.opt_u64()? });
        }
        st.lsq = lsq;

        let n = r.seq_len(16)?;
        st.completions.clear();
        for _ in 0..n {
            let c = r.u64()?;
            let s = r.u64()?;
            st.completions.push(Reverse((c, s)));
        }

        let n = r.seq_len(33)?;
        st.pending_flushes.clear();
        for _ in 0..n {
            st.pending_flushes.push(PendingFlush {
                first_squashed: r.seq()?,
                redirect: r.pc()?,
                kind: flush_kind_from(r.u8()?)?,
                cause_seq: r.seq()?,
                cause_pc: r.pc()?,
            });
        }
        Ok(())
    }

    // --- Memory: backing store and cache hierarchy -----------------------

    fn save_memory(st: &MachineState, w: &mut CkptWriter) {
        st.memory.ckpt_save(w);
        st.hier.ckpt_save(w);
    }

    fn load_memory(st: &mut MachineState, r: &mut CkptReader) -> Result<(), CkptError> {
        st.memory.ckpt_load(r)?;
        st.hier.ckpt_load(r)?;
        Ok(())
    }

    /// Serializes the complete simulation state — architectural and
    /// microarchitectural, in-flight instructions included — into a
    /// versioned, checksummed envelope (see the module docs). The
    /// pipeline is captured exactly as it stands, never drained, so a
    /// restored simulator continues bit-identically.
    pub(crate) fn save(
        st: &MachineState,
        engine: &dyn ReuseEngine,
        sampler: &Sampler,
        tracer: &Tracer,
    ) -> Vec<u8> {
        let mut w = CkptWriter::new();
        w.u64(config_hash(&st.cfg));
        w.u64(program_hash(&st.program));
        w.str(engine.name());

        save_control(st, &mut w);
        save_fetch(st, &mut w);
        save_rename(st, &mut w);
        save_commit(st, &mut w);
        save_issue(st, &mut w);
        save_execute(st, &mut w);
        save_memory(st, &mut w);

        // Engine state, as a length-prefixed blob so the pipeline can
        // frame it without knowing its layout.
        let mut ew = CkptWriter::new();
        engine.ckpt_save(&mut ew);
        w.bytes(&ew.finish());

        sampler.ckpt_save(&mut w);
        tracer.ckpt_save(&mut w);
        w.u32(CKPT_END);

        super::seal(&w.finish())
    }

    /// Restores a snapshot taken by [`save`] over this machine, which
    /// must carry the same configuration, program, and engine (checked
    /// via identity hashes in the payload — mismatches are rejected
    /// before any state is touched, as are all envelope corruptions).
    ///
    /// On a mid-payload [`CkptError::Corrupt`] the machine may be
    /// partially overwritten and must be discarded; no error path leaves
    /// a *silently* inconsistent machine.
    pub(crate) fn restore(
        st: &mut MachineState,
        engine: &mut dyn ReuseEngine,
        sampler: &mut Sampler,
        tracer: &mut Tracer,
        bytes: &[u8],
    ) -> Result<(), CkptError> {
        let payload = super::open(bytes)?;
        let mut r = CkptReader::new(payload);
        if r.u64()? != config_hash(&st.cfg) {
            return Err(CkptError::ConfigMismatch);
        }
        if r.u64()? != program_hash(&st.program) {
            return Err(CkptError::ProgramMismatch);
        }
        let name = r.str()?;
        if name != engine.name() {
            return Err(CkptError::EngineMismatch {
                found: name,
                expect: engine.name().to_string(),
            });
        }

        load_control(st, &mut r)?;
        load_fetch(st, &mut r)?;
        load_rename(st, &mut r)?;
        load_commit(st, &mut r)?;
        load_issue(st, &mut r)?;
        load_execute(st, &mut r)?;
        load_memory(st, &mut r)?;

        let blob = r.bytes()?;
        let mut er = CkptReader::new(blob);
        engine.ckpt_load(&mut er)?;
        er.done()?;

        sampler.ckpt_load(&mut r)?;
        tracer.ckpt_load(&mut r)?;
        if r.u32()? != CKPT_END {
            return Err(CkptError::Corrupt("missing end marker".into()));
        }
        r.done()?;

        tracer.emit(TraceEvent::Ckpt {
            cycle: st.cycle,
            action: CkptAction::Restore,
            insts: st.stats.committed_instructions,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_envelope() {
        let mut w = CkptWriter::new();
        w.u8(7);
        w.bool(true);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(0x0123_4567_89ab_cdef);
        w.i8(-5);
        w.opt_u64(None);
        w.opt_u64(Some(42));
        w.str("mssr");
        w.bytes(&[1, 2, 3]);
        let file = seal(&w.finish());

        let payload = open(&file).expect("valid envelope");
        let mut r = CkptReader::new(payload);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.i8().unwrap(), -5);
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        assert_eq!(r.str().unwrap(), "mssr");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.done().expect("fully consumed");
    }

    #[test]
    fn truncation_is_detected_by_length_not_checksum() {
        let file = seal(&[9; 64]);
        for cut in [0, 7, 19, 20, file.len() - 9, file.len() - 1] {
            match open(&file[..cut]) {
                Err(CkptError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_is_distinct() {
        let mut file = seal(&[1, 2, 3]);
        file[0] ^= 0xff;
        assert_eq!(open(&file).unwrap_err(), CkptError::BadMagic);
    }

    #[test]
    fn version_skew_is_detected_before_the_checksum() {
        let mut file = seal(&[1, 2, 3]);
        file[8] = CKPT_VERSION as u8 + 1;
        // No checksum fix-up: the version check must fire first.
        assert_eq!(
            open(&file).unwrap_err(),
            CkptError::BadVersion { found: CKPT_VERSION + 1, expect: CKPT_VERSION }
        );
    }

    #[test]
    fn flipped_byte_is_a_checksum_error() {
        let mut file = seal(&[5; 32]);
        let mid = ENVELOPE_HEADER + 16;
        file[mid] ^= 0x01;
        assert!(matches!(open(&file).unwrap_err(), CkptError::BadChecksum { .. }));
        // Flipping a checksum byte itself is equally fatal.
        let mut file = seal(&[5; 32]);
        let last = file.len() - 1;
        file[last] ^= 0x01;
        assert!(matches!(open(&file).unwrap_err(), CkptError::BadChecksum { .. }));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut file = seal(&[1]);
        file.push(0);
        assert!(matches!(open(&file).unwrap_err(), CkptError::Corrupt(_)));
    }

    #[test]
    fn reader_overrun_reports_truncated() {
        let mut r = CkptReader::new(&[1, 2]);
        assert!(matches!(r.u64(), Err(CkptError::Truncated { need: 8, have: 2 })));
    }

    #[test]
    fn errors_render_distinct_messages() {
        let msgs: Vec<String> = [
            CkptError::Truncated { need: 10, have: 2 },
            CkptError::BadMagic,
            CkptError::BadVersion { found: 9, expect: CKPT_VERSION },
            CkptError::BadChecksum { stored: 1, computed: 2 },
            CkptError::ProgramMismatch,
            CkptError::ConfigMismatch,
            CkptError::EngineMismatch { found: "a".into(), expect: "b".into() },
            CkptError::Corrupt("x".into()),
        ]
        .iter()
        .map(|e| e.to_string())
        .collect();
        for (i, a) in msgs.iter().enumerate() {
            for b in &msgs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
