//! Interval sampling: periodic `SimStats` deltas as a time series.
//!
//! Every N cycles the pipeline snapshots a handful of cheap cumulative
//! counters and records the *delta* since the previous snapshot as one
//! [`Sample`] — the per-interval view the `mssr-report` sparklines and
//! phase analyses consume. Samples travel two ways at once: into a
//! bounded in-memory [`SampleRing`] (inspectable after the run via
//! `Simulator::samples`) and through the ordinary trace machinery as
//! [`TraceEvent::Sample`](crate::TraceEvent) records, which is how the
//! harness's `--sample N` flag emits them into the JSON-lines
//! trajectory. Both paths carry only deterministic integer counters, so
//! sample streams are byte-identical across runs and `--jobs` values.

use std::collections::VecDeque;

use crate::ckpt::{CkptError, CkptReader, CkptWriter};

/// One sampling interval's worth of statistics deltas.
///
/// All fields are deltas over the interval except `cycle`, which is the
/// cycle count at the moment the sample was taken (so consumers can
/// reconstruct interval boundaries even when sampling started mid-run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sample {
    /// Cycle the sample was taken at (end of the interval).
    pub cycle: u64,
    /// Instructions committed during the interval.
    pub insts: u64,
    /// Branch mispredictions during the interval.
    pub mispredicts: u64,
    /// Instructions squashed during the interval.
    pub squashed: u64,
    /// Reuse grants during the interval.
    pub grants: u64,
    /// L1 data-cache misses during the interval.
    pub l1_misses: u64,
    /// Commit slots lost to branch-squash refill during the interval
    /// (the [`Category::SquashBranch`](crate::Category) account slots).
    pub squash_slots: u64,
}

impl Sample {
    /// The sample as one JSON object in the trace-event schema (stable
    /// key order, integers only).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ev\":\"sample\",\"cycle\":{},\"insts\":{},\"mispredicts\":{},\"squashed\":{},\
             \"grants\":{},\"l1_misses\":{},\"squash_slots\":{}}}",
            self.cycle,
            self.insts,
            self.mispredicts,
            self.squashed,
            self.grants,
            self.l1_misses,
            self.squash_slots
        )
    }

    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        for v in [
            self.cycle,
            self.insts,
            self.mispredicts,
            self.squashed,
            self.grants,
            self.l1_misses,
            self.squash_slots,
        ] {
            w.u64(v);
        }
    }

    pub(crate) fn ckpt_load(r: &mut CkptReader) -> Result<Sample, CkptError> {
        Ok(Sample {
            cycle: r.u64()?,
            insts: r.u64()?,
            mispredicts: r.u64()?,
            squashed: r.u64()?,
            grants: r.u64()?,
            l1_misses: r.u64()?,
            squash_slots: r.u64()?,
        })
    }

    /// Element-wise difference `self - prev` (cumulative snapshots in,
    /// interval delta out); `cycle` keeps `self`'s value.
    fn delta_from(&self, prev: &Sample) -> Sample {
        Sample {
            cycle: self.cycle,
            insts: self.insts - prev.insts,
            mispredicts: self.mispredicts - prev.mispredicts,
            squashed: self.squashed - prev.squashed,
            grants: self.grants - prev.grants,
            l1_misses: self.l1_misses - prev.l1_misses,
            squash_slots: self.squash_slots - prev.squash_slots,
        }
    }
}

/// A bounded ring of the most recent samples (drop-oldest).
#[derive(Clone, Debug)]
pub struct SampleRing {
    ring: VecDeque<Sample>,
    capacity: usize,
    dropped: u64,
}

impl SampleRing {
    /// A ring holding at most `capacity` samples (at least 1).
    pub fn new(capacity: usize) -> SampleRing {
        SampleRing { ring: VecDeque::new(), capacity: capacity.max(1), dropped: 0 }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, s: Sample) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(s);
    }

    /// The retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.ring.iter()
    }

    /// Number of samples evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// The pipeline's interval sampler: an interval, a delta baseline, and
/// the ring of recent samples.
#[derive(Clone, Debug)]
pub struct Sampler {
    interval: u64,
    last: Sample,
    ring: SampleRing,
}

/// Default ring capacity: enough for a 400M-cycle run sampled every
/// 100k cycles before eviction starts.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

impl Sampler {
    /// A sampler firing every `interval` cycles (`0` disables it).
    pub fn new(interval: u64, capacity: usize) -> Sampler {
        Sampler { interval, last: Sample::default(), ring: SampleRing::new(capacity) }
    }

    /// The sampling interval (`0` = disabled).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Whether a sample is due at `cycle`.
    pub fn due(&self, cycle: u64) -> bool {
        self.interval > 0 && cycle.is_multiple_of(self.interval)
    }

    /// Converts a *cumulative* snapshot into an interval delta, records
    /// it, and returns it (for emission as a trace event).
    pub fn record(&mut self, cumulative: Sample) -> Sample {
        let delta = cumulative.delta_from(&self.last);
        self.last = cumulative;
        self.ring.push(delta);
        delta
    }

    /// The retained samples.
    pub fn ring(&self) -> &SampleRing {
        &self.ring
    }

    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.interval);
        self.last.ckpt_save(w);
        w.u64(self.ring.capacity as u64);
        w.u64(self.ring.dropped);
        w.u64(self.ring.ring.len() as u64);
        for s in &self.ring.ring {
            s.ckpt_save(w);
        }
    }

    pub(crate) fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.interval = r.u64()?;
        self.last = Sample::ckpt_load(r)?;
        let capacity = r.u64()? as usize;
        self.ring = SampleRing::new(capacity);
        self.ring.dropped = r.u64()?;
        let n = r.seq_len(56)?;
        if n > capacity {
            return Err(CkptError::Corrupt(format!(
                "{n} samples in checkpoint exceed ring capacity {capacity}"
            )));
        }
        for _ in 0..n {
            self.ring.ring.push_back(Sample::ckpt_load(r)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_schema_is_stable() {
        let s = Sample {
            cycle: 2000,
            insts: 900,
            mispredicts: 3,
            squashed: 40,
            grants: 12,
            l1_misses: 5,
            squash_slots: 64,
        };
        assert_eq!(
            s.to_json(),
            "{\"ev\":\"sample\",\"cycle\":2000,\"insts\":900,\"mispredicts\":3,\"squashed\":40,\
             \"grants\":12,\"l1_misses\":5,\"squash_slots\":64}"
        );
    }

    #[test]
    fn sampler_records_deltas_not_cumulatives() {
        let mut s = Sampler::new(100, 8);
        assert!(s.due(100));
        assert!(!s.due(150));
        assert!(!Sampler::new(0, 8).due(100), "interval 0 never fires");
        let d1 = s.record(Sample { cycle: 100, insts: 50, ..Sample::default() });
        assert_eq!((d1.cycle, d1.insts), (100, 50));
        let d2 = s.record(Sample { cycle: 200, insts: 80, grants: 7, ..Sample::default() });
        assert_eq!((d2.cycle, d2.insts, d2.grants), (200, 30, 7));
        assert_eq!(s.ring().len(), 2);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let mut r = SampleRing::new(2);
        for c in [1u64, 2, 3] {
            r.push(Sample { cycle: c, ..Sample::default() });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        let cycles: Vec<u64> = r.iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, [2, 3]);
        assert!(!r.is_empty());
    }
}
