//! Fetch stage: block-based prediction-directed instruction fetch into
//! the frontend latency queue, one prediction block per call.

use mssr_isa::Opcode;

use crate::bpred::PredMeta;
use crate::engine::{BlockRange, PredBlock, ReuseEngine};
use crate::stage::{ectx, FrontInst, MachineState};
use crate::trace::{TraceEvent, Tracer};

/// Fetches up to `fetch_blocks_per_cycle` prediction blocks.
pub(crate) fn run(st: &mut MachineState, engine: &mut dyn ReuseEngine, tracer: &mut Tracer) {
    // One or more prediction blocks per cycle (§3.9.1's
    // multiple-block-fetching extension duplicates the reconvergence
    // detection per block — `on_block` fires once per block).
    for _ in 0..st.cfg.fetch_blocks_per_cycle {
        fetch_one_block(st, engine, tracer);
    }
}

fn fetch_one_block(st: &mut MachineState, engine: &mut dyn ReuseEngine, tracer: &mut Tracer) {
    if st.cycle < st.fetch_resume_at {
        return;
    }
    let Some(mut pc) = st.fetch_pc else { return };
    // Backpressure: bound the in-flight frontend window.
    if st.frontend_q.len() >= st.cfg.ftq_size * st.cfg.fetch_block_insts {
        return;
    }
    let start = pc;
    let mut last_pc = pc;
    let ready_cycle = st.cycle + st.cfg.frontend_stages - 1;
    let mut count = 0usize;
    let mut next_fetch_pc;
    loop {
        let Some(&inst) = st.program.fetch(pc) else {
            // Wandered outside the program (wrong path): idle until a
            // redirect arrives.
            next_fetch_pc = None;
            break;
        };
        let ghr_before = st.bpred.ghr();
        let ras_sp_before = st.bpred.ras_sp();
        let (pred_taken, pred_next, meta) = match inst.op() {
            op if op.is_cond_branch() => {
                let (taken, meta) = st.bpred.predict_cond(pc);
                let next =
                    if taken { inst.target().expect("branch has target") } else { pc.next() };
                (taken, next, meta)
            }
            Opcode::Jal => (true, inst.target().expect("jal has target"), PredMeta::default()),
            Opcode::Jalr => {
                let t = if inst.is_return() {
                    st.bpred
                        .ras_pop()
                        .or_else(|| st.bpred.predict_indirect(pc))
                        .unwrap_or_else(|| pc.next())
                } else {
                    st.bpred.predict_indirect(pc).unwrap_or_else(|| pc.next())
                };
                (true, t, PredMeta::default())
            }
            _ => (false, pc.next(), PredMeta::default()),
        };
        if inst.is_call() {
            st.bpred.ras_push(pc.next());
        }
        st.frontend_q.push_back(FrontInst {
            ready_cycle,
            pc,
            inst,
            pred_taken,
            pred_next,
            meta,
            ghr_before,
            ras_sp_before,
        });
        count += 1;
        last_pc = pc;
        if inst.is_halt() {
            // Stop predicting past the end of the program.
            next_fetch_pc = None;
            break;
        }
        pc = pred_next;
        next_fetch_pc = Some(pc);
        if pred_taken || count >= st.cfg.fetch_block_insts {
            break;
        }
    }
    st.fetch_pc = next_fetch_pc;
    if count > 0 {
        if tracer.on() {
            tracer.emit(TraceEvent::Fetch {
                cycle: st.cycle,
                start,
                end: last_pc,
                insts: count as u32,
            });
        }
        let blk = PredBlock { range: BlockRange { start, end: last_pc }, cycle: st.cycle };
        engine.on_block(&blk, &mut ectx!(st));
    }
}
