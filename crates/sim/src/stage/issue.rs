//! Issue stage: per-class selection from the reservation stations into
//! the functional units, oldest-first up to each class's unit count.

use crate::engine::ReuseEngine;
use crate::stage::{MachineState, Scratch};
use crate::trace::{TraceEvent, Tracer};
use crate::types::FuClass;

/// Selects ready instructions (into the scratch selection lists, cleared
/// each cycle) and executes them on their functional units.
pub(crate) fn run(
    st: &mut MachineState,
    engine: &mut dyn ReuseEngine,
    tracer: &mut Tracer,
    scratch: &mut Scratch,
) {
    st.iq_int.select_into(FuClass::Alu, st.cfg.alu_units, &mut scratch.sel_alu);
    st.iq_int.select_into(FuClass::Bru, st.cfg.bru_units, &mut scratch.sel_bru);
    st.iq_mem.select_into(FuClass::Lsu, st.cfg.lsu_units, &mut scratch.sel_mem);
    if tracer.on() {
        for (list, fu) in [
            (&scratch.sel_alu, FuClass::Alu),
            (&scratch.sel_bru, FuClass::Bru),
            (&scratch.sel_mem, FuClass::Lsu),
        ] {
            for &seq in list {
                tracer.emit(TraceEvent::Issue { cycle: st.cycle, seq, fu });
            }
        }
    }
    for &seq in &scratch.sel_alu {
        super::execute::exec_alu(st, seq);
    }
    for &seq in &scratch.sel_bru {
        super::execute::exec_bru(st, seq);
    }
    for &seq in &scratch.sel_mem {
        super::execute::exec_mem(st, engine, seq);
    }
}
