//! Execute/writeback stage: functional execution on the issued FUs,
//! completion-event drain into the PRF, branch resolution, and the
//! reused-load verification comparison.

use std::cmp::Reverse;

use mssr_isa::{Opcode, Pc};

use crate::engine::ReuseEngine;
use crate::exec;
use crate::lsq::Forward;
use crate::rob::{BranchOutcome, RobEntry};
use crate::stage::{ectx, MachineState, PendingFlush};
use crate::trace::{TraceEvent, Tracer};
use crate::types::{FlushKind, FuClass, SeqNum};

/// Drains due completion events: retire values into the PRF, wake
/// dependents, resolve branches, and flag mispredictions.
pub(crate) fn writeback(st: &mut MachineState, tracer: &mut Tracer) {
    while let Some(&Reverse((c, s))) = st.completions.peek() {
        if c > st.cycle {
            break;
        }
        st.completions.pop();
        let seq = SeqNum::new(s);
        // Squashed instructions have left the ROB; drop the event.
        let Some(e) = st.rob.get(seq) else { continue };

        // Reused-load verification completion (paper §3.8.3): compare
        // the re-executed value with the reused one.
        if e.reused && e.verify_pending && e.inst.is_load() {
            let fresh = e.pending_value.expect("verification executed");
            let reused = st.prf.read(e.dst.expect("loads have destinations").new_preg);
            if fresh == reused {
                st.rob.get_mut(seq).expect("entry exists").verify_pending = false;
            } else {
                let pc = e.pc;
                st.pending_flushes.push(PendingFlush {
                    first_squashed: seq,
                    redirect: pc,
                    kind: FlushKind::ReuseVerification,
                    cause_seq: seq,
                    cause_pc: pc,
                });
            }
            continue;
        }

        let e = st.rob.get_mut(seq).expect("entry exists");
        if e.completed {
            continue;
        }
        e.completed = true;
        let dst = e.dst;
        let value = e.pending_value;
        let branch = e.branch;
        let pc = e.pc;
        let op = e.inst.op();
        if tracer.on() {
            tracer.emit(TraceEvent::Writeback { cycle: st.cycle, seq, value: value.unwrap_or(0) });
        }
        if let Some(d) = dst {
            st.prf.write(d.new_preg, value.unwrap_or(0));
            st.iq_int.wake(d.new_preg);
            st.iq_mem.wake(d.new_preg);
        }
        if let Some(b) = branch {
            let o = b.resolved.expect("executed branch has an outcome");
            if op == Opcode::Jalr {
                st.bpred.update_indirect(pc, o.next);
            }
            if o.next != b.pred_next {
                st.pending_flushes.push(PendingFlush {
                    first_squashed: seq.next(),
                    redirect: o.next,
                    kind: FlushKind::BranchMispredict,
                    cause_seq: seq,
                    cause_pc: pc,
                });
            }
        }
    }
}

fn src_vals(st: &MachineState, e: &RobEntry) -> (u64, u64) {
    let a = e.src_pregs[0].map_or(0, |p| st.prf.read(p));
    let b = e.src_pregs[1].map_or(0, |p| st.prf.read(p));
    (a, b)
}

pub(crate) fn exec_alu(st: &mut MachineState, seq: SeqNum) {
    let e = st.rob.get(seq).expect("issued instruction is in the ROB");
    let (a, b) = src_vals(st, e);
    let op = e.inst.op();
    let v = exec::alu(op, a, b, e.inst.imm()).unwrap_or(0);
    let lat = match op {
        Opcode::Mul => st.cfg.mul_latency,
        Opcode::Div | Opcode::Rem => st.cfg.div_latency,
        _ => 1,
    };
    st.rob.get_mut(seq).expect("entry exists").pending_value = Some(v);
    st.completions.push(Reverse((st.cycle + lat, seq.value())));
}

pub(crate) fn exec_bru(st: &mut MachineState, seq: SeqNum) {
    let e = st.rob.get(seq).expect("issued instruction is in the ROB");
    let (a, b) = src_vals(st, e);
    let op = e.inst.op();
    let pc = e.pc;
    let outcome = if op.is_cond_branch() {
        let taken = exec::branch_taken(op, a, b);
        BranchOutcome {
            taken,
            next: if taken { e.inst.target().expect("branch has target") } else { pc.next() },
        }
    } else if op == Opcode::Jal {
        BranchOutcome { taken: true, next: e.inst.target().expect("jal has target") }
    } else {
        // Jalr: target from register.
        BranchOutcome { taken: true, next: Pc::new(a.wrapping_add(e.inst.imm() as u64)) }
    };
    let link = pc.next().addr();
    let e = st.rob.get_mut(seq).expect("entry exists");
    if e.dst.is_some() {
        e.pending_value = Some(link);
    }
    e.branch.as_mut().expect("control instruction has branch state").resolved = Some(outcome);
    st.completions.push(Reverse((st.cycle + 1, seq.value())));
}

pub(crate) fn exec_mem(st: &mut MachineState, engine: &mut dyn ReuseEngine, seq: SeqNum) {
    let e = st.rob.get(seq).expect("issued instruction is in the ROB");
    let (base, data) = src_vals(st, e);
    let inst = e.inst;
    let addr = st.memory.wrap(exec::mem_addr(&inst, base));
    if inst.is_load() {
        let verify = e.reused && e.verify_pending;
        let (value, lat) = match st.lsq.forward(seq, addr) {
            Forward::Data(v) => {
                st.stats.store_forwards += 1;
                (v, st.cfg.forward_latency)
            }
            Forward::Pending => {
                // The forwarding source knows its address but not yet
                // its data: reading memory now would return the
                // pre-store value. Requeue the load (ready — it was
                // just selected) and retry next cycle.
                st.stats.store_forward_stalls += 1;
                st.rob.get_mut(seq).expect("entry exists").fwd_stalled = true;
                st.iq_mem.insert(seq, FuClass::Lsu, [None, None]);
                return;
            }
            Forward::Miss => (st.memory.read_u64(addr), st.hier.access(addr)),
        };
        if !verify {
            let lq = st.lsq.load_mut(seq).expect("dispatched load is in the LQ");
            lq.addr = Some(addr);
            lq.issued = true;
            lq.value = Some(value);
        } else if let Some(lq) = st.lsq.load_mut(seq) {
            // Verification re-executions refresh the recorded address.
            lq.addr = Some(addr);
        }
        let e = st.rob.get_mut(seq).expect("entry exists");
        e.pending_value = Some(value);
        e.mem_addr = Some(addr);
        e.fwd_stalled = false;
        st.completions.push(Reverse((st.cycle + lat, seq.value())));
    } else {
        // Store: address and data become known together.
        let sq = st.lsq.store_mut(seq).expect("dispatched store is in the SQ");
        sq.addr = Some(addr);
        sq.data = Some(data);
        st.rob.get_mut(seq).expect("entry exists").mem_addr = Some(addr);
        // Store-to-load ordering check (§3.8.1).
        if let Some(lseq) = st.lsq.store_check(seq, addr) {
            let lpc = st.rob.get(lseq).expect("violating load is in the ROB").pc;
            st.pending_flushes.push(PendingFlush {
                first_squashed: lseq,
                redirect: lpc,
                kind: FlushKind::MemoryOrder,
                cause_seq: lseq,
                cause_pc: lpc,
            });
        }
        engine.on_store_executed(addr, &mut ectx!(st));
        st.completions.push(Reverse((st.cycle + 1, seq.value())));
    }
}
