//! Rename stage: in-order register rename over the RAT, reuse test
//! against the engine (paper §3.5), and dispatch into ROB/IQ/LSQ.
//!
//! Distinct from `crate::rename`, which holds the RAT/free-list/PRF
//! structures themselves; this module is the pipeline pass over them.

use mssr_isa::{ArchReg, Opcode};

use crate::engine::{DstBinding, RenamedInst, ReuseEngine, ReuseQuery};
use crate::exec;
use crate::lsq::{Forward, LqEntry, SqEntry};
use crate::rob::{BranchState, DstInfo, RobEntry};
use crate::stage::{ectx, fu_class, paranoid_enabled, MachineState};
use crate::trace::{TraceEvent, Tracer};
use crate::types::{FuClass, Rgid, SeqNum};

/// Allocates the next RGID generation for `a`, reporting overflow.
fn alloc_rgid(st: &mut MachineState, engine: &mut dyn ReuseEngine, a: ArchReg) -> Rgid {
    let g = st.rgids.next(a);
    if g.is_null() {
        st.rgid_overflows_total += 1;
        engine.on_rgid_overflow(&mut ectx!(st));
    }
    g
}

/// Renames and dispatches up to `rename_width` instructions.
pub(crate) fn run(st: &mut MachineState, engine: &mut dyn ReuseEngine, tracer: &mut Tracer) {
    for _ in 0..st.cfg.rename_width {
        let Some(front) = st.frontend_q.front() else { break };
        if front.ready_cycle > st.cycle || !st.rob.has_space() {
            break;
        }
        let inst = front.inst;
        // Structural checks before consuming the instruction.
        let fu = fu_class(inst.op());
        let iq_ok = match fu {
            Some(FuClass::Lsu) => st.iq_mem.has_space(),
            Some(_) => st.iq_int.has_space(),
            None => true,
        };
        let lsq_ok = (!inst.is_load() || st.lsq.lq_has_space())
            && (!inst.is_store() || st.lsq.sq_has_space());
        if !iq_ok || !lsq_ok {
            break;
        }
        if inst.writes_reg() && st.free_list.available() == 0 {
            engine.on_register_pressure(&mut ectx!(st));
            if st.free_list.available() == 0 {
                break;
            }
        }

        let fi = st.frontend_q.pop_front().expect("front exists");
        let seq = SeqNum::new(st.next_seq);
        st.next_seq += 1;
        st.stats.renamed_instructions += 1;

        // Source lookup; `x0` and absent operands carry no integrity tag.
        let mut src_pregs = [None, None];
        let mut src_rgids = [None, None];
        for (i, s) in inst.sources().iter().enumerate() {
            if let Some(a) = s {
                if !a.is_zero() {
                    // Lazily revive mappings whose RGID was nulled by a
                    // global reset: long-lived registers (loop-invariant
                    // constants, stack pointers) would otherwise stay
                    // unreusable forever.
                    if st.rat.rgid(*a).is_null() {
                        let g = alloc_rgid(st, engine, *a);
                        if !g.is_null() {
                            st.rat.retag(*a, g);
                        }
                    }
                    src_pregs[i] = Some(st.rat.lookup(*a));
                    src_rgids[i] = Some(st.rat.rgid(*a));
                }
            }
        }

        // Reuse test (paper §3.5): only value-producing, non-control,
        // non-store instructions are candidates.
        let eligible = inst.writes_reg() && !inst.is_control();
        let grant = if eligible {
            let q = ReuseQuery { seq, pc: fi.pc, inst: &inst, src_rgids, src_pregs };
            engine.try_reuse(&q, &mut ectx!(st))
        } else {
            None
        };

        let mut dst_info = None;
        let mut completed = false;
        let mut reused = false;
        let mut verify_pending = false;

        if let Some(g) = grant {
            // Credit the execution latency this grant skipped to the
            // account (clamped there against the accrued
            // squash-penalty slots); the engine can discount it, e.g.
            // verified loads re-execute and recover nothing.
            let estimate = match inst.op() {
                Opcode::Mul => st.cfg.mul_latency,
                Opcode::Div | Opcode::Rem => st.cfg.div_latency,
                Opcode::Ld => st.cfg.l1d.latency,
                _ => 1,
            };
            let credit = engine.reuse_credit_latency(inst.op(), estimate);
            st.account.credit_reuse(credit);
            if g.rgid.is_some() {
                // The grant forwarded a reconvergence stream: a
                // fast-path fetch in the paper's terms.
                st.account.credit_recon_fetches += 1;
            }
            st.grants_total += 1;
            if paranoid_enabled() && !inst.is_load() {
                // Debug oracle: a sound ALU grant implies the granted
                // register holds exactly what re-executing the
                // instruction on its current (RGID-matched) sources
                // would produce.
                let a = src_pregs[0].map_or(0, |p| st.prf.read(p));
                let b = src_pregs[1].map_or(0, |p| st.prf.read(p));
                if let Some(fresh) = exec::alu(inst.op(), a, b, inst.imm()) {
                    let got = st.prf.read(g.preg);
                    if fresh != got {
                        eprintln!(
                            "PARANOID-ALU cycle={} seq={} pc={} op={} granted={} fresh={} srcs={:?} gens={:?} dst={}",
                            st.cycle,
                            seq,
                            fi.pc,
                            inst.op(),
                            got,
                            fresh,
                            src_pregs,
                            src_rgids,
                            g.preg
                        );
                    }
                }
            }
            let arch = inst.dst().expect("granted instruction writes a register");
            let rgid = match g.rgid {
                Some(r) => r,
                None => alloc_rgid(st, engine, arch),
            };
            let (prev_preg, prev_rgid) = st.rat.install(arch, g.preg, rgid);
            st.prf.set_ready(g.preg);
            dst_info =
                Some(DstInfo { arch, new_preg: g.preg, prev_preg, new_rgid: rgid, prev_rgid });
            completed = true;
            reused = true;
            if inst.is_load() {
                if paranoid_enabled() {
                    // Debug oracle: the reused value should match what
                    // the load would read right now (unless an older
                    // store with an unknown address is still in
                    // flight, which store_check later covers).
                    if let Some(addr) = g.load_addr {
                        let fresh = match st.lsq.forward(seq, addr) {
                            Forward::Data(v) => v,
                            // Pending data counts as unknown; fall back
                            // to memory like the pre-Forward oracle did.
                            _ => st.memory.read_u64(addr),
                        };
                        let got = st.prf.read(g.preg);
                        if fresh != got {
                            eprintln!(
                                "PARANOID cycle={} seq={} pc={} addr={:#x} reused={} fresh={}",
                                st.cycle, seq, fi.pc, addr, got, fresh
                            );
                        }
                    }
                }
                st.lsq.push_load(LqEntry {
                    seq,
                    addr: g.load_addr,
                    issued: true,
                    value: Some(st.prf.read(g.preg)),
                    reused: true,
                });
                if g.needs_load_verify {
                    verify_pending = true;
                    // Re-execute for verification; sources are ready
                    // (the squashed instance executed with the same
                    // mappings), so it waits only for LSU bandwidth.
                    st.iq_mem.insert(seq, FuClass::Lsu, [None, None]);
                }
            }
        } else {
            if let Some(arch) = inst.dst() {
                let preg = st.free_list.alloc().expect("availability checked above");
                let rgid = alloc_rgid(st, engine, arch);
                let (prev_preg, prev_rgid) = st.rat.install(arch, preg, rgid);
                st.prf.clear_ready(preg);
                dst_info =
                    Some(DstInfo { arch, new_preg: preg, prev_preg, new_rgid: rgid, prev_rgid });
            }
            match fu {
                None => completed = true, // nop / halt: nothing to execute
                Some(c) => {
                    let mut waiting = [None, None];
                    for (w, s) in waiting.iter_mut().zip(src_pregs.iter()) {
                        *w = s.filter(|&p| !st.prf.is_ready(p));
                    }
                    if inst.is_load() {
                        st.lsq.push_load(LqEntry {
                            seq,
                            addr: None,
                            issued: false,
                            value: None,
                            reused: false,
                        });
                    }
                    if inst.is_store() {
                        st.lsq.push_store(SqEntry { seq, addr: None, data: None });
                    }
                    match c {
                        FuClass::Lsu => st.iq_mem.insert(seq, c, waiting),
                        _ => st.iq_int.insert(seq, c, waiting),
                    }
                }
            }
        }

        let branch = inst.is_control().then_some(BranchState {
            pred_next: fi.pred_next,
            pred_taken: fi.pred_taken,
            meta: fi.meta,
            resolved: None,
        });

        st.rob.push(RobEntry {
            seq,
            pc: fi.pc,
            inst,
            dst: dst_info,
            src_pregs,
            src_rgids,
            completed,
            reused,
            verify_pending,
            fwd_stalled: false,
            pending_value: None,
            branch,
            mem_addr: None,
            ghr_before: fi.ghr_before,
            ras_sp_before: fi.ras_sp_before,
        });

        if tracer.on() {
            tracer.emit(TraceEvent::Rename { cycle: st.cycle, seq, pc: fi.pc });
            if reused {
                tracer.emit(TraceEvent::ReuseGrant {
                    cycle: st.cycle,
                    seq,
                    pc: fi.pc,
                    verify: verify_pending,
                });
            }
        }

        let r = RenamedInst {
            seq,
            pc: fi.pc,
            op: inst.op(),
            dst: dst_info.map(|d| DstBinding { arch: d.arch, preg: d.new_preg, rgid: d.new_rgid }),
            reused,
        };
        engine.on_renamed(&r, &mut ectx!(st));
    }
}
