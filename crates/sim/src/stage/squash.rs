//! Squash stage: end-of-cycle flush arbitration (oldest pending flush
//! wins), ROB/IQ/LSQ unwind with RAT rollback, squashed-stream handoff
//! to the reuse engine, and the global RGID reset.

use crate::engine::{DstBinding, ReuseEngine, SquashedInst};
use crate::stage::{ectx, group_blocks_into, MachineState, PendingFlush, Scratch};
use crate::trace::{TraceEvent, Tracer};
use crate::types::{FlushKind, Rgid, SeqNum};

/// Applies the oldest live pending flush discovered this cycle.
pub(crate) fn handle_flushes(
    st: &mut MachineState,
    engine: &mut dyn ReuseEngine,
    tracer: &mut Tracer,
    scratch: &mut Scratch,
) {
    if st.pending_flushes.is_empty() {
        return;
    }
    // A flush can go stale if its anchor instruction left the ROB
    // before this point — e.g. an externally injected snoop replay
    // whose load committed in the same window. Stale flushes are
    // dropped; among the live ones the oldest wins.
    let f = st
        .pending_flushes
        .iter()
        .filter(|f| match f.kind {
            // The mispredicted branch itself survives its squash and
            // is always still in flight within the discovery cycle.
            FlushKind::BranchMispredict => st.rob.get(f.cause_seq).is_some(),
            // Replay flushes anchor at the squashed instruction.
            _ => st.rob.get(f.first_squashed).is_some(),
        })
        .min_by_key(|f| f.first_squashed)
        .copied();
    // Any younger pending flush lies inside the squashed region of the
    // oldest one — its cause was wrong-path work.
    st.pending_flushes.clear();
    if let Some(f) = f {
        do_squash(st, engine, tracer, scratch, f);
    }
}

fn do_squash(
    st: &mut MachineState,
    engine: &mut dyn ReuseEngine,
    tracer: &mut Tracer,
    scratch: &mut Scratch,
    f: PendingFlush,
) {
    match f.kind {
        FlushKind::BranchMispredict => {
            st.stats.flushes_branch += 1;
            st.stats.mispredictions += 1;
        }
        FlushKind::MemoryOrder => st.stats.flushes_mem_order += 1,
        FlushKind::ReuseVerification => st.stats.flushes_reuse_verify += 1,
    }

    // Gather the PC ranges of instructions still in the frontend; they
    // extend the squashed stream beyond the ROB. Captured into the
    // reusable scratch event so the hot path allocates nothing.
    group_blocks_into(
        st.frontend_q.iter().map(|fi| (fi.pc, fi.pred_taken)),
        st.cfg.fetch_block_insts,
        &mut scratch.squash_ev.frontend_blocks,
    );

    // Restore the speculative global history and return-address stack.
    match f.kind {
        FlushKind::BranchMispredict => {
            let br = st.rob.get(f.cause_seq).expect("mispredicted branch is live");
            let b = br.branch.expect("branch state");
            let o = b.resolved.expect("resolved");
            let (is_cond, meta, ghr_before) = (br.inst.is_cond_branch(), b.meta, br.ghr_before);
            let (ras_sp, is_call, is_ret, ret_pc) =
                (br.ras_sp_before, br.inst.is_call(), br.inst.is_return(), br.pc.next());
            if is_cond {
                st.bpred.recover_cond(meta, o.taken);
            } else {
                st.bpred.restore_ghr(ghr_before);
            }
            // The mispredicted instruction itself survives; re-apply
            // its own RAS effect on top of the restored counter.
            st.bpred.restore_ras_sp(ras_sp);
            if is_call {
                st.bpred.ras_push(ret_pc);
            } else if is_ret {
                let _ = st.bpred.ras_pop();
            }
        }
        _ => {
            let e = st.rob.get(f.first_squashed).expect("flushed instruction is live");
            st.bpred.restore_ghr(e.ghr_before);
            st.bpred.restore_ras_sp(e.ras_sp_before);
        }
    }
    st.frontend_q.clear();

    // Unwind the ROB tail (into the scratch buffer, youngest first),
    // restoring the RAT youngest-first.
    st.rob.squash_from_into(f.first_squashed, &mut scratch.squashed);
    if tracer.on() {
        tracer.emit(TraceEvent::Squash {
            cycle: st.cycle,
            kind: f.kind,
            first: f.first_squashed,
            count: scratch.squashed.len() as u64,
            redirect: f.redirect,
        });
    }
    for e in &scratch.squashed {
        if let Some(d) = e.dst {
            st.rat.restore(d.arch, d.prev_preg, d.prev_rgid);
        }
    }
    st.iq_int.squash_from(f.first_squashed);
    st.iq_mem.squash_from(f.first_squashed);
    st.lsq.squash_from(f.first_squashed);
    st.stats.squashed_instructions += scratch.squashed.len() as u64;

    // Instructions in flight at the squash (issued, writeback pending)
    // have already computed their results; in hardware the writeback
    // drains into the physical register file even though the
    // instruction is squashed. Let those values land so reuse engines
    // can recycle them (their completion events are dropped later).
    //
    // Exception: a reused load's in-flight *verification* re-execution
    // must never drain. Its destination register already holds the
    // reused value under a forwarded RGID generation; overwriting it
    // with the freshly read value would change a register's contents
    // without a rename, breaking the generation ⇒ value invariant
    // that every downstream reuse test depends on.
    if st.cfg.drain_inflight_on_squash {
        for e in &scratch.squashed {
            #[allow(clippy::nonminimal_bool)] // spells out the two exclusions separately
            if !e.completed && !(e.reused && e.verify_pending) {
                if let (Some(d), Some(v)) = (e.dst, e.pending_value) {
                    st.prf.write(d.new_preg, v);
                }
            }
        }
    }

    // Hand the squashed stream to the engine (oldest first) before
    // releasing any destination registers, so it can retain them.
    if f.kind == FlushKind::BranchMispredict {
        st.squash_ctr += 1;
        let ev = &mut scratch.squash_ev;
        ev.insts.clear();
        ev.insts.extend(scratch.squashed.iter().rev().map(|e| SquashedInst {
            seq: e.seq,
            pc: e.pc,
            op: e.inst.op(),
            dst: e.dst.map(|d| DstBinding { arch: d.arch, preg: d.new_preg, rgid: d.new_rgid }),
            src_rgids: e.src_rgids,
            src_pregs: e.src_pregs,
            // Completed, or in flight with the result draining into
            // the PRF — but never an unverified reused load.
            executed: (e.completed
                || (st.cfg.drain_inflight_on_squash && e.pending_value.is_some()))
                && !(e.reused && e.verify_pending),
            is_load: e.inst.is_load(),
            is_store: e.inst.is_store(),
            load_addr: if e.inst.is_load() { e.mem_addr } else { None },
        }));
        ev.squash_id = st.squash_ctr;
        ev.cause_seq = f.cause_seq;
        ev.cause_pc = f.cause_pc;
        ev.redirect = f.redirect;
        engine.on_mispredict_squash(ev, &mut ectx!(st));
    } else {
        engine.on_flush(f.kind, &mut ectx!(st));
    }

    // Release the live holds of squashed destination mappings; the
    // engine's retains keep reusable values alive.
    for e in &scratch.squashed {
        if let Some(d) = e.dst {
            super::release_preg(st, engine, d.new_preg);
        }
    }

    // Redirect the frontend. Until an instruction of the refilled
    // stream (seq >= the current rename boundary) commits, idle-ROB
    // cycles are the squash's penalty and are blamed on its kind.
    st.refill_blame = Some((f.kind, SeqNum::new(st.next_seq)));
    st.fetch_pc = Some(f.redirect);
    st.fetch_resume_at = st.cycle + 1;
    // A squash is the operation that rearranges register ownership;
    // sweep thoroughly (free-list integrity included) after every
    // one, independent of the per-cycle stride.
    #[cfg(debug_assertions)]
    crate::check::assert_thorough(st, &*engine, scratch);
}

/// Applies a requested global RGID reset: null every live generation
/// so pre-reset tags can never alias post-reset ones.
pub(crate) fn apply_rgid_reset(st: &mut MachineState, engine: &mut dyn ReuseEngine) {
    if !st.rgid_reset_requested {
        return;
    }
    st.rgid_reset_requested = false;
    st.rgid_resets_total += 1;
    st.rgids.reset();
    // Null every live RGID so pre-reset generations can never alias
    // post-reset ones (RAT, plus ROB fields used for rollback and
    // Squash Log population).
    st.rat.null_all_rgids();
    for e in st.rob.iter_mut() {
        for g in e.src_rgids.iter_mut().flatten() {
            *g = Rgid::NULL;
        }
        if let Some(d) = &mut e.dst {
            d.new_rgid = Rgid::NULL;
            d.prev_rgid = Rgid::NULL;
        }
    }
    // The engine must drop every captured generation from the old
    // window — including streams captured *after* it requested the
    // reset, earlier in this same cycle (e.g. a squash between the
    // overflow and the end of the cycle).
    engine.on_rgid_reset(&mut ectx!(st));
}
