//! Commit stage: in-order retirement from the ROB head, CPI-stack blame
//! attribution for idle slots, and store/load/branch retirement effects.

use crate::account::Category;
use crate::engine::ReuseEngine;
use crate::stage::{ectx, MachineState};
use crate::trace::{TraceEvent, Tracer};
use crate::types::FlushKind;

/// Commits up to `commit_width` instructions and reports the cycle's
/// slot attribution: how many slots retired an instruction, and the
/// [`Category`] the remaining idle slots are blamed on.
pub(crate) fn run(
    st: &mut MachineState,
    engine: &mut dyn ReuseEngine,
    tracer: &mut Tracer,
) -> (u64, Category) {
    let mut committed: u64 = 0;
    for _ in 0..st.cfg.commit_width {
        let Some(head) = st.rob.head() else {
            // The ROB ran dry: a recently squashed pipeline is still
            // refilling (blame the flush), otherwise the frontend
            // simply had not delivered.
            let blame = match st.refill_blame {
                Some((FlushKind::BranchMispredict, _)) => Category::SquashBranch,
                Some((FlushKind::MemoryOrder, _)) => Category::MemStall,
                Some((FlushKind::ReuseVerification, _)) => Category::ReuseVerify,
                None => Category::FrontendEmpty,
            };
            return (committed, blame);
        };
        if !head.completed || head.verify_pending {
            let blame = if head.verify_pending {
                Category::ReuseVerify
            } else if head.fwd_stalled {
                Category::StoreForwardPending
            } else if head.inst.is_load() || head.inst.is_store() {
                Category::MemStall
            } else {
                Category::BackendPressure
            };
            return (committed, blame);
        }
        #[cfg(debug_assertions)]
        if let Some(v) =
            crate::check::check_commit_entry(head.seq, head.reused, head.verify_pending)
        {
            panic!("invariant violation at cycle {}: {v}", st.cycle);
        }
        let e = st.rob.pop_head().expect("head exists");
        // The first commit from the post-squash stream ends the
        // refill window.
        if st.refill_blame.is_some_and(|(_, boundary)| e.seq >= boundary) {
            st.refill_blame = None;
        }
        committed += 1;
        st.stats.committed_instructions += 1;
        if tracer.on() {
            tracer.emit(TraceEvent::Commit { cycle: st.cycle, seq: e.seq, pc: e.pc });
        }
        if e.inst.is_halt() {
            st.halted = true;
            return (committed, Category::Base);
        }
        if e.inst.is_store() {
            let (addr, data) = st.lsq.commit_store(e.seq);
            st.hier.access(addr);
            st.memory.write_u64(addr, data);
            st.stats.committed_stores += 1;
        }
        if e.inst.is_load() {
            st.lsq.commit_load(e.seq);
            st.stats.committed_loads += 1;
        }
        if let Some(b) = e.branch {
            st.stats.committed_branches += 1;
            let o = b.resolved.expect("committed branch is resolved");
            if e.inst.is_cond_branch() {
                st.stats.committed_cond_branches += 1;
                st.bpred.train_cond(e.pc, o.taken, b.meta);
            }
        }
        if let Some(d) = e.dst {
            super::release_preg(st, engine, d.prev_preg);
        }
        engine.on_commit(1, &mut ectx!(st));
        if st.stats.committed_instructions >= st.cfg.max_insts {
            st.halted = true;
            return (committed, Category::Base);
        }
    }
    // A full-width commit has no idle slots; the blame is unused.
    (committed, Category::Base)
}
