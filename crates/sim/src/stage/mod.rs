//! The pipeline stages: pure passes over an explicit [`MachineState`].
//!
//! Each stage lives in its own module — [`fetch`], [`rename`], [`issue`],
//! [`execute`], [`commit`], [`squash`] — and exposes free functions of the
//! shape `fn run(st: &mut MachineState, engine: &mut dyn ReuseEngine,
//! tracer: &mut Tracer, ...)`. A stage owns no state of its own: every
//! architectural and microarchitectural register lives in [`MachineState`]
//! (checkpointed as a unit by `crate::ckpt`), while per-cycle temporaries
//! live in the [`Scratch`] buffers the orchestrator passes in — cleared,
//! never dropped, so the steady-state hot loop performs no heap
//! allocation.
//!
//! The `Simulator` in `crate::pipeline` is the thin orchestrator: it owns
//! the state, the engine, the tracer and the sampler, and calls the stages
//! in commit → writeback → issue → rename → fetch → flush order.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use mssr_isa::{Inst, Opcode, Pc, Program};

use crate::account::CycleAccount;
use crate::bpred::{BranchPredictor, PredMeta};
use crate::config::SimConfig;
use crate::engine::{BlockRange, ReuseEngine, SquashEvent};
use crate::iq::IssueQueue;
use crate::lsq::Lsq;
use crate::mem::{Hierarchy, MainMemory};
use crate::rename::{FreeList, Prf, Rat, RgidAlloc};
use crate::rob::{Rob, RobEntry};
use crate::stats::SimStats;
use crate::types::{FlushKind, FuClass, PhysReg, SeqNum};

pub(crate) mod commit;
pub(crate) mod execute;
pub(crate) mod fetch;
pub(crate) mod issue;
pub(crate) mod rename;
pub(crate) mod squash;

/// An instruction in flight between prediction and rename.
#[derive(Clone, Debug)]
pub(crate) struct FrontInst {
    pub(crate) ready_cycle: u64,
    pub(crate) pc: Pc,
    pub(crate) inst: Inst,
    pub(crate) pred_taken: bool,
    pub(crate) pred_next: Pc,
    pub(crate) meta: PredMeta,
    pub(crate) ghr_before: u64,
    pub(crate) ras_sp_before: u64,
}

/// A flush discovered during execution, applied at end of cycle.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingFlush {
    /// First (oldest) squashed sequence number.
    pub(crate) first_squashed: SeqNum,
    pub(crate) redirect: Pc,
    pub(crate) kind: FlushKind,
    /// For mispredictions: the branch. Otherwise the flushed instruction.
    pub(crate) cause_seq: SeqNum,
    pub(crate) cause_pc: Pc,
}

/// The complete machine state of one simulated core — everything the
/// stages read and write, and exactly what a checkpoint captures (the
/// engine, tracer and sampler ride alongside it in `Simulator`).
///
/// Ownership rules: stages receive `&mut MachineState` and may touch any
/// field; the engine is always passed separately so engine hooks can
/// borrow disjoint state through [`ectx!`]; nothing in here may hold a
/// per-cycle temporary (those belong in [`Scratch`]).
pub(crate) struct MachineState {
    pub(crate) cfg: SimConfig,
    pub(crate) program: Program,
    pub(crate) cycle: u64,
    pub(crate) next_seq: u64,
    pub(crate) squash_ctr: u64,
    pub(crate) halted: bool,

    pub(crate) bpred: BranchPredictor,
    pub(crate) fetch_pc: Option<Pc>,
    pub(crate) fetch_resume_at: u64,
    pub(crate) frontend_q: VecDeque<FrontInst>,

    pub(crate) rat: Rat,
    pub(crate) free_list: FreeList,
    pub(crate) prf: Prf,
    pub(crate) rgids: RgidAlloc,
    pub(crate) rgid_reset_requested: bool,

    pub(crate) rob: Rob,
    pub(crate) iq_int: IssueQueue,
    pub(crate) iq_mem: IssueQueue,
    pub(crate) lsq: Lsq,
    pub(crate) completions: BinaryHeap<Reverse<(u64, u64)>>,
    pub(crate) pending_flushes: Vec<PendingFlush>,

    pub(crate) memory: MainMemory,
    pub(crate) hier: Hierarchy,

    pub(crate) stats: SimStats,
    pub(crate) rgid_overflows_total: u64,
    pub(crate) rgid_resets_total: u64,

    pub(crate) account: CycleAccount,
    /// After a squash, idle-ROB cycles are blamed on the flush kind until
    /// an instruction from the refilled (post-squash) stream — `seq >=`
    /// the stored boundary — commits.
    pub(crate) refill_blame: Option<(FlushKind, SeqNum)>,
    pub(crate) grants_total: u64,
}

impl MachineState {
    /// A pristine machine about to fetch `program`'s entry point.
    pub(crate) fn new(cfg: SimConfig, program: Program) -> MachineState {
        let fetch_pc = Some(program.base());
        MachineState {
            bpred: BranchPredictor::new(&cfg),
            fetch_pc,
            fetch_resume_at: 0,
            frontend_q: VecDeque::new(),
            rat: Rat::new(),
            free_list: FreeList::new(cfg.phys_regs, mssr_isa::NUM_ARCH_REGS),
            prf: Prf::new(cfg.phys_regs),
            rgids: RgidAlloc::new(cfg.rgid_values()),
            rgid_reset_requested: false,
            rob: Rob::new(cfg.rob_size),
            iq_int: IssueQueue::new(cfg.iq_int_size),
            iq_mem: IssueQueue::new(cfg.iq_mem_size),
            lsq: Lsq::new(cfg.lq_size, cfg.sq_size),
            completions: BinaryHeap::new(),
            pending_flushes: Vec::new(),
            memory: MainMemory::new(cfg.mem_bytes),
            hier: Hierarchy::new(&cfg),
            stats: SimStats::default(),
            rgid_overflows_total: 0,
            rgid_resets_total: 0,
            account: CycleAccount::default(),
            refill_blame: None,
            grants_total: 0,
            cycle: 0,
            next_seq: 1,
            squash_ctr: 0,
            halted: false,
            program,
            cfg,
        }
    }
}

/// Per-cycle temporaries, hoisted out of the stages so the hot loop is
/// steady-state allocation-free: every buffer is cleared (capacity kept)
/// at the start of the pass that fills it, never dropped. Excluded from
/// checkpoints — scratch contents never outlive a cycle.
pub(crate) struct Scratch {
    /// Issue stage: the per-class selection lists.
    pub(crate) sel_alu: Vec<SeqNum>,
    pub(crate) sel_bru: Vec<SeqNum>,
    pub(crate) sel_mem: Vec<SeqNum>,
    /// Squash stage: the unwound ROB tail (youngest first).
    pub(crate) squashed: Vec<RobEntry>,
    /// Squash stage: the reusable [`SquashEvent`] handed to the engine
    /// (its `insts` / `frontend_blocks` vectors are cleared per squash).
    pub(crate) squash_ev: SquashEvent,
    /// Checker: the live-register bitmap used by the debug sweeps.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) live: Vec<bool>,
    /// Checker: the free-list queue-membership bitmap.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) queued: Vec<bool>,
}

impl Scratch {
    pub(crate) fn new() -> Scratch {
        Scratch {
            sel_alu: Vec::new(),
            sel_bru: Vec::new(),
            sel_mem: Vec::new(),
            squashed: Vec::new(),
            squash_ev: SquashEvent {
                squash_id: 0,
                cause_seq: SeqNum::new(1),
                cause_pc: Pc::new(0),
                redirect: Pc::new(0),
                insts: Vec::new(),
                frontend_blocks: Vec::new(),
            },
            live: Vec::new(),
            queued: Vec::new(),
        }
    }
}

/// Builds an [`EngineCtx`](crate::engine::EngineCtx) from disjoint
/// [`MachineState`] fields so the engine (passed alongside) can be called
/// simultaneously.
macro_rules! ectx {
    ($s:expr) => {
        crate::engine::EngineCtx {
            free_list: &mut $s.free_list,
            stage: crate::engine::StageCtx { cycle: $s.cycle, rob_size: $s.cfg.rob_size },
            rgid_reset_requested: &mut $s.rgid_reset_requested,
        }
    };
}
pub(crate) use ectx;

/// Releases one hold on `p`, notifying the engine when the register
/// becomes allocatable again.
pub(crate) fn release_preg(st: &mut MachineState, engine: &mut dyn ReuseEngine, p: PhysReg) {
    st.free_list.release(p);
    if st.free_list.holds(p) == 0 {
        engine.on_preg_freed(p, &mut ectx!(st));
    }
}

/// The functional-unit class an opcode executes on (`None`: retires
/// without executing).
pub(crate) fn fu_class(op: Opcode) -> Option<FuClass> {
    match op {
        Opcode::Nop | Opcode::Halt => None,
        Opcode::Ld | Opcode::St => Some(FuClass::Lsu),
        op if op.is_control() => Some(FuClass::Bru),
        _ => Some(FuClass::Alu),
    }
}

/// Whether the `MSSR_PARANOID` reuse-oracle cross-checks are enabled.
pub(crate) fn paranoid_enabled() -> bool {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("MSSR_PARANOID").is_some())
}

/// Groups a predicted instruction stream into contiguous [`BlockRange`]s,
/// splitting on taken predictions, PC discontinuities, and `max_block`.
/// Clears `out` first and fills it in place (hot-loop scratch
/// discipline: capacity is kept, nothing is dropped or reallocated in
/// steady state).
pub(crate) fn group_blocks_into(
    pcs: impl Iterator<Item = (Pc, bool)>,
    max_block: usize,
    out: &mut Vec<BlockRange>,
) {
    out.clear();
    let mut cur: Option<(BlockRange, usize, bool)> = None;
    for (pc, taken) in pcs {
        match cur.as_mut() {
            Some((range, n, last_taken))
                if !*last_taken && pc == range.end.next() && *n < max_block =>
            {
                range.end = pc;
                *n += 1;
                *last_taken = taken;
            }
            _ => {
                if let Some((range, _, _)) = cur.take() {
                    out.push(range);
                }
                cur = Some((BlockRange { start: pc, end: pc }, 1, taken));
            }
        }
    }
    if let Some((range, _, _)) = cur {
        out.push(range);
    }
}

/// Allocating convenience wrapper over [`group_blocks_into`] (tests and
/// cold paths only; the squash stage uses the `_into` variant).
#[cfg(test)]
pub(crate) fn group_blocks(
    pcs: impl Iterator<Item = (Pc, bool)>,
    max_block: usize,
) -> Vec<BlockRange> {
    let mut out = Vec::new();
    group_blocks_into(pcs, max_block, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_blocks_splits_on_discontinuity_and_size() {
        let blocks = group_blocks((0..10).map(|i| (Pc::new(0x1000 + i * 4), false)), 8);
        assert_eq!(blocks.len(), 2, "8-instruction limit splits the run");
        assert_eq!(blocks[0], BlockRange { start: Pc::new(0x1000), end: Pc::new(0x101c) });
        assert_eq!(blocks[1], BlockRange { start: Pc::new(0x1020), end: Pc::new(0x1024) });

        let jumpy = vec![
            (Pc::new(0x1000), false),
            (Pc::new(0x1004), true), // taken branch ends the block
            (Pc::new(0x2000), false),
        ];
        let blocks = group_blocks(jumpy.into_iter(), 8);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0], BlockRange { start: Pc::new(0x1000), end: Pc::new(0x1004) });
        assert_eq!(blocks[1], BlockRange { start: Pc::new(0x2000), end: Pc::new(0x2000) });
    }

    #[test]
    fn group_blocks_empty_stream_yields_no_blocks() {
        assert!(group_blocks(std::iter::empty(), 8).is_empty());
    }

    #[test]
    fn group_blocks_single_pc_is_one_degenerate_block() {
        let blocks = group_blocks(std::iter::once((Pc::new(0x1000), false)), 8);
        assert_eq!(blocks, vec![BlockRange { start: Pc::new(0x1000), end: Pc::new(0x1000) }]);
        // A lone taken branch is still one block; the split it would
        // force has nothing after it.
        let taken = group_blocks(std::iter::once((Pc::new(0x1000), true)), 8);
        assert_eq!(taken, vec![BlockRange { start: Pc::new(0x1000), end: Pc::new(0x1000) }]);
    }

    #[test]
    fn group_blocks_run_exactly_at_max_block_stays_whole() {
        let blocks = group_blocks((0..8).map(|i| (Pc::new(0x1000 + i * 4), false)), 8);
        assert_eq!(blocks, vec![BlockRange { start: Pc::new(0x1000), end: Pc::new(0x101c) }]);
    }

    #[test]
    fn group_blocks_pc_gap_splits_even_without_taken_prediction() {
        // A discontinuity with `taken == false` (e.g. a not-taken
        // prediction followed by a wrong-path redirect) still splits.
        let pcs = vec![
            (Pc::new(0x1000), false),
            (Pc::new(0x1004), false),
            (Pc::new(0x1010), false), // gap: 0x1008 missing
        ];
        let blocks = group_blocks(pcs.into_iter(), 8);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0], BlockRange { start: Pc::new(0x1000), end: Pc::new(0x1004) });
        assert_eq!(blocks[1], BlockRange { start: Pc::new(0x1010), end: Pc::new(0x1010) });
    }

    #[test]
    fn group_blocks_into_clears_previous_contents() {
        let mut out = vec![BlockRange { start: Pc::new(0xdead), end: Pc::new(0xdead) }];
        group_blocks_into(std::iter::once((Pc::new(0x1000), false)), 8, &mut out);
        assert_eq!(out, vec![BlockRange { start: Pc::new(0x1000), end: Pc::new(0x1000) }]);
    }
}
