//! Simulation statistics.

use crate::account::CycleAccount;
use crate::ckpt::{CkptError, CkptReader, CkptWriter};

/// Counters maintained by a reuse engine.
///
/// The same struct serves all engines; counters an engine does not use
/// stay zero, and engine-specific series (e.g. Register Integration's
/// per-set replacement counts) go into [`EngineStats::extra`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Reuse tests performed at rename.
    pub reuse_tests: u64,
    /// Successful grants (instructions whose execution was skipped).
    pub reuse_grants: u64,
    /// Of the grants, how many were loads.
    pub reused_loads: u64,
    /// Tests failed on an RGID (or physical-name) mismatch.
    pub reuse_fail_stale: u64,
    /// Tests failed because the squashed instruction never executed.
    pub reuse_fail_not_executed: u64,
    /// Load reuses rejected by the memory-hazard filter.
    pub reuse_fail_mem: u64,
    /// Reconvergence points detected.
    pub reconvergences: u64,
    /// …onto the stream of the branch that redirected the current fetch.
    pub recon_simple: u64,
    /// …onto the stream of an **elder** branch (software-induced
    /// multi-stream reconvergence).
    pub recon_software: u64,
    /// …onto the stream of a **younger** branch (hardware-induced, from
    /// out-of-order branch resolution).
    pub recon_hardware: u64,
    /// Histogram of reconvergence stream distance; index `i` counts
    /// distance `i + 1`, with the last bucket absorbing the tail.
    pub stream_distance: [u64; 8],
    /// Reuse sequences terminated because the fetch stream diverged from
    /// the squashed stream.
    pub divergences: u64,
    /// Streams invalidated by the reconvergence timeout.
    pub timeouts: u64,
    /// RGID allocation overflows observed.
    pub rgid_overflows: u64,
    /// Global RGID resets performed.
    pub rgid_resets: u64,
    /// Squashed streams captured into Wrong-Path Buffers.
    pub streams_captured: u64,
    /// Squash Log entries written.
    pub entries_logged: u64,
    /// Streams dropped to relieve physical-register pressure.
    pub pressure_reclaims: u64,
    /// Reuse-table replacements (Register Integration).
    pub table_replacements: u64,
    /// Simulated MIPS — millions of simulated instructions per host
    /// wall-second — in fixed-point thousandths. Filled in by the
    /// harness under `--timing`, zero otherwise. Wall-clock is
    /// machine-dependent, so this is the one counter that is *not*
    /// deterministic: it stays out of checkpoints, out of the
    /// `--baseline` regression comparison, and out of the JSON record
    /// unless actually measured.
    pub sim_mips_milli: u64,
    /// Engine-specific named counters.
    pub extra: Vec<(String, u64)>,
}

impl EngineStats {
    /// Serializes the counters into a checkpoint stream (fixed counters
    /// in declaration order, then the named `extra` pairs).
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        for v in [
            self.reuse_tests,
            self.reuse_grants,
            self.reused_loads,
            self.reuse_fail_stale,
            self.reuse_fail_not_executed,
            self.reuse_fail_mem,
            self.reconvergences,
            self.recon_simple,
            self.recon_software,
            self.recon_hardware,
            self.divergences,
            self.timeouts,
            self.rgid_overflows,
            self.rgid_resets,
            self.streams_captured,
            self.entries_logged,
            self.pressure_reclaims,
            self.table_replacements,
        ] {
            w.u64(v);
        }
        for d in self.stream_distance {
            w.u64(d);
        }
        w.u64(self.extra.len() as u64);
        for (k, v) in &self.extra {
            w.str(k);
            w.u64(*v);
        }
    }

    /// Deserializes counters written by [`EngineStats::ckpt_save`].
    pub fn ckpt_load(r: &mut CkptReader) -> Result<EngineStats, CkptError> {
        let mut s = EngineStats {
            reuse_tests: r.u64()?,
            reuse_grants: r.u64()?,
            reused_loads: r.u64()?,
            reuse_fail_stale: r.u64()?,
            reuse_fail_not_executed: r.u64()?,
            reuse_fail_mem: r.u64()?,
            reconvergences: r.u64()?,
            recon_simple: r.u64()?,
            recon_software: r.u64()?,
            recon_hardware: r.u64()?,
            ..EngineStats::default()
        };
        s.divergences = r.u64()?;
        s.timeouts = r.u64()?;
        s.rgid_overflows = r.u64()?;
        s.rgid_resets = r.u64()?;
        s.streams_captured = r.u64()?;
        s.entries_logged = r.u64()?;
        s.pressure_reclaims = r.u64()?;
        s.table_replacements = r.u64()?;
        for d in &mut s.stream_distance {
            *d = r.u64()?;
        }
        let n = r.seq_len(9)?;
        for _ in 0..n {
            let k = r.str()?;
            let v = r.u64()?;
            s.extra.push((k, v));
        }
        Ok(s)
    }

    /// Records a reconvergence stream distance into the histogram.
    pub fn record_distance(&mut self, distance: u64) {
        let idx = (distance.max(1) - 1).min(self.stream_distance.len() as u64 - 1) as usize;
        self.stream_distance[idx] += 1;
    }

    /// The engine counters as a JSON object (stable key order, integers
    /// only — bit-identical across runs and platforms).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut field = |k: &str, v: u64| {
            if out.len() > 1 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        };
        field("reuse_tests", self.reuse_tests);
        field("reuse_grants", self.reuse_grants);
        field("reused_loads", self.reused_loads);
        field("reuse_fail_stale", self.reuse_fail_stale);
        field("reuse_fail_not_executed", self.reuse_fail_not_executed);
        field("reuse_fail_mem", self.reuse_fail_mem);
        field("reconvergences", self.reconvergences);
        field("recon_simple", self.recon_simple);
        field("recon_software", self.recon_software);
        field("recon_hardware", self.recon_hardware);
        field("divergences", self.divergences);
        field("timeouts", self.timeouts);
        field("rgid_overflows", self.rgid_overflows);
        field("rgid_resets", self.rgid_resets);
        field("streams_captured", self.streams_captured);
        field("entries_logged", self.entries_logged);
        field("pressure_reclaims", self.pressure_reclaims);
        field("table_replacements", self.table_replacements);
        // Only when measured: an always-present zero would change the
        // byte-identical trajectories of every untimed run.
        if self.sim_mips_milli > 0 {
            field("sim_mips_milli", self.sim_mips_milli);
        }
        out.push_str(",\"stream_distance\":[");
        for (i, v) in self.stream_distance.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push_str("],\"extra\":{");
        // `extra` is an append-only list; a key pushed twice (e.g. a
        // counter re-exported after a stats refresh) must still yield
        // valid JSON with unique keys. Last write wins, preserving the
        // position of the first occurrence so key order stays stable.
        let mut emitted: Vec<&str> = Vec::with_capacity(self.extra.len());
        for (k, _) in &self.extra {
            if !emitted.iter().any(|e| e == k) {
                emitted.push(k);
            }
        }
        for (i, k) in emitted.iter().enumerate() {
            let v = self
                .extra
                .iter()
                .rev()
                .find(|(key, _)| key == k)
                .map(|&(_, v)| v)
                .expect("key came from extra");
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(k)));
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// End-of-run statistics for one simulation.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub committed_instructions: u64,
    /// Control instructions retired.
    pub committed_branches: u64,
    /// Conditional branches retired.
    pub committed_cond_branches: u64,
    /// Branch mispredictions (wrong direction or target) — the
    /// *architectural* mispredict count, and the numerator of
    /// [`SimStats::mispredict_rate`] and [`SimStats::mpki`]. Distinct in
    /// meaning from [`SimStats::flushes_branch`], which counts the
    /// *pipeline flushes* recovery performed: today each misprediction
    /// costs exactly one flush, but a recovery scheme that coalesces or
    /// defers flushes would lower `flushes_branch` without changing this
    /// counter, so derived prediction-accuracy metrics must use this one.
    pub mispredictions: u64,
    /// Instructions entered into the ROB (including squashed ones).
    pub renamed_instructions: u64,
    /// Instructions squashed from the ROB.
    pub squashed_instructions: u64,
    /// Flushes caused by branch mispredictions.
    pub flushes_branch: u64,
    /// Flushes caused by store-to-load ordering violations.
    pub flushes_mem_order: u64,
    /// Flushes caused by reused-load verification mismatches.
    pub flushes_reuse_verify: u64,
    /// Loads retired.
    pub committed_loads: u64,
    /// Stores retired.
    pub committed_stores: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub store_forwards: u64,
    /// Load issues deferred because the youngest older same-block store
    /// knew its address but not yet its data ([`Forward::Pending`]; the
    /// load retries instead of reading stale memory).
    ///
    /// [`Forward::Pending`]: crate::lsq::Forward
    pub store_forward_stalls: u64,
    /// L1 data cache hits / misses (demand accesses).
    pub l1_hits: u64,
    /// L1 data cache misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
    /// Snoop requests injected.
    pub snoops: u64,
    /// Instructions executed by the functional fast-forward before the
    /// detailed pipeline took over (`--ffwd N`). These are **not**
    /// included in [`SimStats::committed_instructions`], so IPC remains
    /// the detailed region's IPC.
    pub ffwd_insts: u64,
    /// Detailed cycles the fast-forward skipped, at a nominal 1 IPC
    /// (i.e. equal to [`SimStats::ffwd_insts`]). Nonzero only for
    /// fast-forwarded runs; restored runs carry the original counters.
    pub skipped_cycles: u64,
    /// Engine-side counters.
    pub engine: EngineStats,
    /// The CPI-stack cycle account (see [`crate::account`]).
    pub account: CycleAccount,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of retired conditional branches that were mispredicted
    /// (from [`SimStats::mispredictions`], the architectural count — not
    /// the flush count).
    pub fn mispredict_rate(&self) -> f64 {
        if self.committed_cond_branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.committed_cond_branches as f64
        }
    }

    /// Mispredictions per kilo-instruction (from
    /// [`SimStats::mispredictions`], the architectural count — not the
    /// flush count).
    pub fn mpki(&self) -> f64 {
        if self.committed_instructions == 0 {
            0.0
        } else {
            1000.0 * self.mispredictions as f64 / self.committed_instructions as f64
        }
    }

    /// L1 data-cache hit rate over demand accesses.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// L2 hit rate over L1 misses.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// The run's statistics as one JSON object (stable key order,
    /// integers only, engine counters nested under `"engine"`).
    ///
    /// This is the record format of the experiment harness's JSON-lines
    /// output (`BENCH_*.json` trajectories): because every field is an
    /// integer counter from a deterministic simulation, serialized
    /// output is byte-identical across runs, thread counts, and
    /// platforms.
    ///
    /// # Example
    ///
    /// ```
    /// use mssr_sim::SimStats;
    /// let s = SimStats { cycles: 100, committed_instructions: 250, ..SimStats::default() };
    /// let j = s.to_json();
    /// assert!(j.starts_with("{\"cycles\":100,"));
    /// assert!(j.contains("\"engine\":{"));
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut field = |k: &str, v: u64| {
            if out.len() > 1 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        };
        field("cycles", self.cycles);
        field("committed_instructions", self.committed_instructions);
        field("committed_branches", self.committed_branches);
        field("committed_cond_branches", self.committed_cond_branches);
        field("mispredictions", self.mispredictions);
        field("renamed_instructions", self.renamed_instructions);
        field("squashed_instructions", self.squashed_instructions);
        field("flushes_branch", self.flushes_branch);
        field("flushes_mem_order", self.flushes_mem_order);
        field("flushes_reuse_verify", self.flushes_reuse_verify);
        field("committed_loads", self.committed_loads);
        field("committed_stores", self.committed_stores);
        field("store_forwards", self.store_forwards);
        field("store_forward_stalls", self.store_forward_stalls);
        field("l1_hits", self.l1_hits);
        field("l1_misses", self.l1_misses);
        field("l2_hits", self.l2_hits);
        field("l2_misses", self.l2_misses);
        field("snoops", self.snoops);
        field("ffwd_insts", self.ffwd_insts);
        field("skipped_cycles", self.skipped_cycles);
        out.push_str(",\"engine\":");
        out.push_str(&self.engine.to_json());
        out.push_str(",\"account\":");
        out.push_str(&self.account.to_json());
        out.push('}');
        out
    }

    /// A multi-line human-readable summary of the run.
    ///
    /// # Example
    ///
    /// ```
    /// use mssr_sim::SimStats;
    /// let s = SimStats { cycles: 100, committed_instructions: 250, ..SimStats::default() };
    /// let r = s.report();
    /// assert!(r.contains("IPC"));
    /// assert!(r.contains("2.50"));
    /// ```
    pub fn report(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: String| {
            out.push_str(&format!("{k:<28}{v}\n"));
        };
        line("cycles", format!("{}", self.cycles));
        line("instructions committed", format!("{}", self.committed_instructions));
        line("IPC", format!("{:.2}", self.ipc()));
        line(
            "branches",
            format!(
                "{} committed, {} mispredicted ({:.1} MPKI)",
                self.committed_branches,
                self.mispredictions,
                self.mpki()
            ),
        );
        line(
            "flushes",
            format!(
                "{} branch, {} memory-order, {} reuse-verify",
                self.flushes_branch, self.flushes_mem_order, self.flushes_reuse_verify
            ),
        );
        line(
            "memory",
            format!(
                "{} loads, {} stores, {} forwarded ({} stalled pending data)",
                self.committed_loads,
                self.committed_stores,
                self.store_forwards,
                self.store_forward_stalls
            ),
        );
        line(
            "caches",
            format!(
                "L1 hit {:.1}%, L2 hit {:.1}%",
                100.0 * self.l1_hit_rate(),
                100.0 * self.l2_hit_rate()
            ),
        );
        line("squashed instructions", format!("{}", self.squashed_instructions));
        if self.ffwd_insts > 0 {
            line(
                "fast-forward",
                format!(
                    "{} insts functional, {} cycles skipped",
                    self.ffwd_insts, self.skipped_cycles
                ),
            );
        }
        if self.engine.reuse_tests > 0 || self.engine.streams_captured > 0 {
            line(
                "squash reuse",
                format!(
                    "{} granted / {} tested, {} loads",
                    self.engine.reuse_grants, self.engine.reuse_tests, self.engine.reused_loads
                ),
            );
            line(
                "reconvergence",
                format!(
                    "{} detected ({} simple / {} sw / {} hw), {} streams captured",
                    self.engine.reconvergences,
                    self.engine.recon_simple,
                    self.engine.recon_software,
                    self.engine.recon_hardware,
                    self.engine.streams_captured
                ),
            );
            // Bucket i counts stream distance i + 1; the last bucket
            // absorbs the tail (see EngineStats::record_distance).
            let buckets: Vec<String> = self
                .engine
                .stream_distance
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let tail = i == self.engine.stream_distance.len() - 1;
                    format!("{}{}:{v}", i as u64 + 1, if tail { "+" } else { "" })
                })
                .collect();
            line("stream distance", buckets.join(" "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_rates() {
        let s = SimStats {
            cycles: 100,
            committed_instructions: 250,
            committed_cond_branches: 50,
            mispredictions: 5,
            flushes_branch: 5,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
        assert!((s.mpki() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn derived_mispredict_metrics_use_mispredictions_not_flushes() {
        // Pin the two counters apart: `mispredictions` is the
        // architectural count the derived metrics divide; `flushes_branch`
        // is the pipeline-flush count and must not leak into them.
        let s = SimStats {
            committed_instructions: 1000,
            committed_cond_branches: 100,
            mispredictions: 10,
            flushes_branch: 999,
            ..SimStats::default()
        };
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
        assert!((s.mpki() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.mpki(), 0.0);
    }

    #[test]
    fn report_includes_reuse_only_when_active() {
        let plain = SimStats { cycles: 10, committed_instructions: 10, ..SimStats::default() };
        assert!(!plain.report().contains("squash reuse"));
        let mut with_reuse = plain;
        with_reuse.engine.reuse_tests = 5;
        with_reuse.engine.reuse_grants = 2;
        let r = with_reuse.report();
        assert!(r.contains("squash reuse"));
        assert!(r.contains("2 granted / 5 tested"));
    }

    #[test]
    fn report_covers_forward_stalls_caches_and_distance_histogram() {
        let mut s = SimStats {
            cycles: 100,
            committed_instructions: 250,
            store_forwards: 7,
            store_forward_stalls: 3,
            l1_hits: 90,
            l1_misses: 10,
            l2_hits: 8,
            l2_misses: 2,
            ..SimStats::default()
        };
        s.engine.reuse_tests = 4;
        s.engine.record_distance(1);
        s.engine.record_distance(100);
        let r = s.report();
        assert!(r.contains("(3 stalled pending data)"), "store_forward_stalls: {r}");
        assert!(r.contains("L1 hit 90.0%"), "L1 hit rate: {r}");
        assert!(r.contains("L2 hit 80.0%"), "L2 hit rate: {r}");
        assert!(r.contains("stream distance"), "histogram line: {r}");
        assert!(r.contains("1:1 2:0 3:0 4:0 5:0 6:0 7:0 8+:1"), "bucket list: {r}");
    }

    #[test]
    fn engine_extra_json_dedups_keys_last_write_wins() {
        let mut e = EngineStats::default();
        e.extra.push(("wpb_hits".into(), 1));
        e.extra.push(("aligner_probes".into(), 5));
        e.extra.push(("wpb_hits".into(), 9));
        let j = e.to_json();
        assert!(j.contains("\"extra\":{\"wpb_hits\":9,\"aligner_probes\":5}"), "{j}");
        assert_eq!(j.matches("wpb_hits").count(), 1, "duplicate key must be emitted once");
    }

    #[test]
    fn sim_stats_json_nests_the_account() {
        let mut s = SimStats { cycles: 2, ..SimStats::default() };
        s.account.accrue(3, crate::account::Category::MemStall, 8);
        s.account.accrue(0, crate::account::Category::SquashBranch, 8);
        let j = s.to_json();
        assert!(j.contains("\"account\":{\"base\":3,"), "{j}");
        assert!(j.ends_with("\"credit_reuse_cycles\":0,\"credit_recon_fetches\":0}}"), "{j}");
    }

    #[test]
    fn ffwd_fields_serialize_and_report() {
        let s = SimStats {
            cycles: 10,
            committed_instructions: 10,
            ffwd_insts: 5000,
            skipped_cycles: 5000,
            ..SimStats::default()
        };
        let j = s.to_json();
        assert!(j.contains("\"snoops\":0,\"ffwd_insts\":5000,\"skipped_cycles\":5000,"), "{j}");
        let r = s.report();
        assert!(r.contains("5000 insts functional, 5000 cycles skipped"), "{r}");
        let plain = SimStats { cycles: 10, ..SimStats::default() };
        assert!(!plain.report().contains("fast-forward"), "line only when ffwd ran");
    }

    #[test]
    fn l1_hit_rate_math() {
        let s = SimStats { l1_hits: 90, l1_misses: 10, ..SimStats::default() };
        assert!((s.l1_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(SimStats::default().l1_hit_rate(), 0.0);
    }

    #[test]
    fn distance_histogram_buckets() {
        let mut e = EngineStats::default();
        e.record_distance(1);
        e.record_distance(1);
        e.record_distance(3);
        e.record_distance(100);
        assert_eq!(e.stream_distance[0], 2);
        assert_eq!(e.stream_distance[2], 1);
        assert_eq!(e.stream_distance[7], 1, "tail bucket absorbs large distances");
        e.record_distance(0); // defensive: clamps to bucket 0
        assert_eq!(e.stream_distance[0], 3);
    }

    #[test]
    fn distance_histogram_tail_boundary() {
        // Bucket i counts distance i + 1; the last in-range distance is 7
        // (bucket 6), and 8 is the first distance the tail bucket absorbs.
        let mut e = EngineStats::default();
        e.record_distance(1);
        e.record_distance(8);
        e.record_distance(9);
        e.record_distance(100);
        assert_eq!(e.stream_distance[0], 1, "distance 1 lands in bucket 0");
        assert_eq!(e.stream_distance[6], 0, "distance 8 must not land in bucket 6");
        assert_eq!(e.stream_distance[7], 3, "distances 8, 9, 100 all land in the tail");
        assert_eq!(e.stream_distance.iter().sum::<u64>(), 4, "every event lands somewhere");
    }

    #[test]
    fn sim_mips_is_emitted_only_when_measured() {
        // Untimed runs leave the field zero, and the JSON record must be
        // byte-identical to one from a build that predates the counter.
        let mut e = EngineStats::default();
        assert!(!e.to_json().contains("sim_mips"));
        e.sim_mips_milli = 12_345;
        assert!(e.to_json().contains("\"sim_mips_milli\":12345"));
        // Wall-clock throughput never round-trips through checkpoints.
        let mut w = CkptWriter::new();
        e.ckpt_save(&mut w);
        let bytes = w.finish();
        let mut r = CkptReader::new(&bytes);
        let back = EngineStats::ckpt_load(&mut r).expect("loads");
        assert_eq!(back.sim_mips_milli, 0);
    }
}
