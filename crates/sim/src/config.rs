//! Simulator configuration.

use crate::bpred::BpredKind;

/// Configuration of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a power of two.
    pub size_bytes: usize,
    /// Set associativity (ways). Must be a power of two.
    pub ways: usize,
    /// Cache line size in bytes. Must be a power of two.
    pub line_bytes: usize,
    /// Access latency in cycles on a hit at this level.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by size, ways and line size.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Full simulator configuration.
///
/// `SimConfig::default()` reproduces the paper's baseline (Table 3):
/// 32-byte fetch blocks, 5 frontend stages, 8-wide decode/rename, 256-entry
/// ROB, 64-entry reservation stations feeding 4 ALUs and 2 BRUs, a 64-entry
/// memory scheduler feeding 2 LSUs, 96-entry load and store queues, 256
/// physical registers, TAGE main predictor, 64 KB 4-way 3-cycle L1D, 2 MB
/// 8-way 12-cycle L2, and 120-cycle DRAM.
///
/// Fields are public (the struct is a passive configuration record); the
/// `with_*` builder methods are provided for fluent construction.
///
/// # Example
///
/// ```
/// use mssr_sim::SimConfig;
///
/// let cfg = SimConfig::default().with_rob_size(128).with_max_insts(100_000);
/// assert_eq!(cfg.rob_size, 128);
/// cfg.validate().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Maximum instructions per fetch block (32 B / 4 B = 8).
    pub fetch_block_insts: usize,
    /// Prediction blocks fetched per cycle. The paper's baseline fetches
    /// one; §3.9.1 describes the multiple-block-fetching extension, where
    /// reconvergence detection runs on every fetched block in parallel.
    pub fetch_blocks_per_cycle: usize,
    /// Total frontend pipeline depth in stages (prediction through rename).
    pub frontend_stages: u64,
    /// Instructions renamed (and decoded) per cycle.
    pub rename_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder buffer capacity.
    pub rob_size: usize,
    /// Fetch target queue capacity in prediction blocks.
    pub ftq_size: usize,
    /// ALU/BRU reservation-station capacity.
    pub iq_int_size: usize,
    /// Memory-scheduler reservation-station capacity.
    pub iq_mem_size: usize,
    /// Number of ALU pipes.
    pub alu_units: usize,
    /// Number of branch pipes.
    pub bru_units: usize,
    /// Number of load/store pipes.
    pub lsu_units: usize,
    /// Load queue capacity.
    pub lq_size: usize,
    /// Store queue capacity.
    pub sq_size: usize,
    /// Physical register file size.
    pub phys_regs: usize,
    /// RGID width in bits (the paper uses 6; one encoding is reserved null).
    pub rgid_bits: u32,
    /// Multiply latency in cycles.
    pub mul_latency: u64,
    /// Divide latency in cycles.
    pub div_latency: u64,
    /// Store-to-load forwarding latency in cycles.
    pub forward_latency: u64,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// DRAM access latency in cycles (added after an L2 miss).
    pub dram_latency: u64,
    /// Simulated main-memory size in bytes. Must be a power of two;
    /// addresses are wrapped into this window so wrong-path accesses with
    /// garbage addresses stay in bounds.
    pub mem_bytes: usize,
    /// Bimodal next-line-predictor table entries.
    pub bimodal_entries: usize,
    /// Entries per TAGE tagged table.
    pub tage_entries: usize,
    /// Number of TAGE tagged tables.
    pub tage_tables: usize,
    /// Indirect-target BTB entries.
    pub btb_entries: usize,
    /// Which branch-predictor pair the frontend runs (the `--bpred` axis).
    pub bpred: BpredKind,
    /// Whether results of instructions that were in flight (issued,
    /// writeback pending) at a squash drain into the physical register
    /// file, as they do in hardware. Disabling it restricts squash reuse
    /// to results that had fully written back — an ablation axis.
    pub drain_inflight_on_squash: bool,
    /// Stop after committing this many instructions (safety bound).
    pub max_insts: u64,
    /// Stop after this many cycles (safety bound).
    pub max_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            fetch_block_insts: 8,
            fetch_blocks_per_cycle: 1,
            frontend_stages: 5,
            rename_width: 8,
            commit_width: 8,
            rob_size: 256,
            ftq_size: 32,
            iq_int_size: 64,
            iq_mem_size: 64,
            alu_units: 4,
            bru_units: 2,
            lsu_units: 2,
            lq_size: 96,
            sq_size: 96,
            phys_regs: 256,
            rgid_bits: 6,
            mul_latency: 3,
            div_latency: 12,
            forward_latency: 4,
            l1d: CacheConfig { size_bytes: 64 * 1024, ways: 4, line_bytes: 64, latency: 3 },
            l2: CacheConfig { size_bytes: 2 * 1024 * 1024, ways: 8, line_bytes: 64, latency: 12 },
            dram_latency: 120,
            mem_bytes: 1 << 25,
            bimodal_entries: 1 << 13,
            tage_entries: 1 << 10,
            tage_tables: 5,
            btb_entries: 1 << 10,
            bpred: BpredKind::Tage,
            drain_inflight_on_squash: true,
            max_insts: u64::MAX,
            max_cycles: u64::MAX,
        }
    }
}

/// A configuration validation failure, naming the offending field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid simulator configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl SimConfig {
    /// Checks structural invariants (power-of-two sizes, non-zero widths).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn pow2(name: &str, v: usize) -> Result<(), ConfigError> {
            if v == 0 || !v.is_power_of_two() {
                Err(ConfigError(format!("{name} must be a non-zero power of two, got {v}")))
            } else {
                Ok(())
            }
        }
        fn nonzero(name: &str, v: usize) -> Result<(), ConfigError> {
            if v == 0 {
                Err(ConfigError(format!("{name} must be non-zero")))
            } else {
                Ok(())
            }
        }
        nonzero("fetch_block_insts", self.fetch_block_insts)?;
        nonzero("fetch_blocks_per_cycle", self.fetch_blocks_per_cycle)?;
        nonzero("rename_width", self.rename_width)?;
        nonzero("commit_width", self.commit_width)?;
        nonzero("rob_size", self.rob_size)?;
        nonzero("alu_units", self.alu_units)?;
        nonzero("bru_units", self.bru_units)?;
        nonzero("lsu_units", self.lsu_units)?;
        pow2("mem_bytes", self.mem_bytes)?;
        pow2("bimodal_entries", self.bimodal_entries)?;
        pow2("tage_entries", self.tage_entries)?;
        pow2("btb_entries", self.btb_entries)?;
        for (name, c) in [("l1d", &self.l1d), ("l2", &self.l2)] {
            pow2(&format!("{name}.size_bytes"), c.size_bytes)?;
            pow2(&format!("{name}.ways"), c.ways)?;
            pow2(&format!("{name}.line_bytes"), c.line_bytes)?;
            if c.sets() == 0 {
                return Err(ConfigError(format!("{name} has zero sets")));
            }
        }
        if self.phys_regs <= mssr_isa::NUM_ARCH_REGS {
            return Err(ConfigError(format!(
                "phys_regs ({}) must exceed the {} architectural registers",
                self.phys_regs,
                mssr_isa::NUM_ARCH_REGS
            )));
        }
        if self.frontend_stages < 2 {
            return Err(ConfigError("frontend_stages must be at least 2".to_string()));
        }
        if self.rgid_bits == 0 || self.rgid_bits > 15 {
            return Err(ConfigError(format!(
                "rgid_bits must be in 1..=15, got {}",
                self.rgid_bits
            )));
        }
        Ok(())
    }

    /// The number of distinct non-null RGID values.
    pub fn rgid_values(&self) -> u16 {
        // One encoding is reserved for null.
        ((1u32 << self.rgid_bits) - 1) as u16
    }

    /// Sets the ROB capacity.
    pub fn with_rob_size(mut self, n: usize) -> SimConfig {
        self.rob_size = n;
        self
    }

    /// Sets the physical register file size.
    pub fn with_phys_regs(mut self, n: usize) -> SimConfig {
        self.phys_regs = n;
        self
    }

    /// Sets the rename (and decode) width.
    pub fn with_rename_width(mut self, n: usize) -> SimConfig {
        self.rename_width = n;
        self
    }

    /// Bounds the simulation to `n` committed instructions.
    pub fn with_max_insts(mut self, n: u64) -> SimConfig {
        self.max_insts = n;
        self
    }

    /// Bounds the simulation to `n` cycles.
    pub fn with_max_cycles(mut self, n: u64) -> SimConfig {
        self.max_cycles = n;
        self
    }

    /// Sets the simulated main-memory size in bytes (power of two).
    pub fn with_mem_bytes(mut self, n: usize) -> SimConfig {
        self.mem_bytes = n;
        self
    }

    /// Sets the number of prediction blocks fetched per cycle (§3.9.1's
    /// multiple-block-fetching extension).
    pub fn with_fetch_blocks_per_cycle(mut self, n: usize) -> SimConfig {
        self.fetch_blocks_per_cycle = n;
        self
    }

    /// Selects the branch-predictor pair.
    pub fn with_bpred(mut self, kind: BpredKind) -> SimConfig {
        self.bpred = kind;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table3() {
        let c = SimConfig::default();
        assert_eq!(c.fetch_block_insts, 8, "32B blocks of 4B instructions");
        assert_eq!(c.frontend_stages, 5);
        assert_eq!(c.rename_width, 8);
        assert_eq!(c.rob_size, 256);
        assert_eq!(c.alu_units, 4);
        assert_eq!(c.bru_units, 2);
        assert_eq!(c.lsu_units, 2);
        assert_eq!(c.lq_size, 96);
        assert_eq!(c.sq_size, 96);
        assert_eq!(c.phys_regs, 256);
        assert_eq!(c.l1d.size_bytes, 64 * 1024);
        assert_eq!(c.l1d.ways, 4);
        assert_eq!(c.l1d.latency, 3);
        assert_eq!(c.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.latency, 12);
        assert_eq!(c.dram_latency, 120);
        c.validate().unwrap();
    }

    #[test]
    fn rgid_value_space() {
        let c = SimConfig::default();
        assert_eq!(c.rgid_bits, 6);
        assert_eq!(c.rgid_values(), 63, "6-bit RGIDs reserve one null encoding");
    }

    #[test]
    fn cache_sets() {
        let c = SimConfig::default();
        assert_eq!(c.l1d.sets(), 64 * 1024 / (4 * 64));
        assert_eq!(c.l2.sets(), 2 * 1024 * 1024 / (8 * 64));
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(SimConfig { rob_size: 0, ..SimConfig::default() }.validate().is_err());
        assert!(SimConfig { fetch_blocks_per_cycle: 0, ..SimConfig::default() }
            .validate()
            .is_err());
        assert!(SimConfig { mem_bytes: 3000, ..SimConfig::default() }.validate().is_err());
        assert!(SimConfig { phys_regs: 64, ..SimConfig::default() }.validate().is_err());
        assert!(SimConfig { rgid_bits: 0, ..SimConfig::default() }.validate().is_err());
        assert!(SimConfig { frontend_stages: 1, ..SimConfig::default() }.validate().is_err());
        let bad_cache = SimConfig {
            l1d: CacheConfig { size_bytes: 100, ways: 4, line_bytes: 64, latency: 3 },
            ..SimConfig::default()
        };
        assert!(bad_cache.validate().is_err());
    }

    #[test]
    fn builders_apply() {
        let c = SimConfig::default()
            .with_rob_size(64)
            .with_phys_regs(128)
            .with_rename_width(4)
            .with_max_insts(10)
            .with_max_cycles(20)
            .with_mem_bytes(1 << 20)
            .with_bpred(BpredKind::Oracle);
        assert_eq!(c.bpred, BpredKind::Oracle);
        assert_eq!(c.rob_size, 64);
        assert_eq!(c.phys_regs, 128);
        assert_eq!(c.rename_width, 4);
        assert_eq!(c.max_insts, 10);
        assert_eq!(c.max_cycles, 20);
        assert_eq!(c.mem_bytes, 1 << 20);
    }
}
