//! A TAGE-SC-L-class conditional predictor: the stock TAGE + bimodal
//! predictor augmented with a loop predictor and a GEHL-style
//! statistical corrector.
//!
//! Both additions keep the digest-equality invariant the functional
//! warmup relies on: *prediction* is a pure read (plus the shared
//! speculative history shift the embedded TAGE already does), and every
//! piece of mutable corrector/loop state is updated only at `train`
//! time — i.e. in commit order, from `(pc, taken, meta.ghr_before)` —
//! so a functional fast-forward replays exactly the state a drained
//! detailed run reaches. The corrector's train rule re-derives the
//! TAGE component prediction from the commit-time tables rather than
//! carrying predict-time state, which is what makes the update a pure
//! function of the commit stream.

use mssr_isa::Pc;

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::config::SimConfig;

use super::tage::TageCond;
use super::{CondPredictor, OracleFeed, PredMeta};

/// Number of loop-table entries (direct-mapped, tagged).
const LOOP_ENTRIES: usize = 128;
/// Loop confidence needed before the loop predictor overrides.
const LOOP_CONF: u8 = 3;
/// Per-table corrector weight count.
const SC_ENTRIES: usize = 1024;
/// History lengths (in GHR bits) of the corrector tables; `0` is the
/// PC-indexed bias table.
const SC_HISTS: [u32; 3] = [0, 8, 16];
/// Confidence margin the corrector sum must clear to flip the TAGE
/// prediction, and the update threshold of the GEHL train rule.
const SC_THETA: i32 = 6;
/// Weight clamp range.
const SC_MAX: i8 = 31;
const SC_MIN: i8 = -32;
/// Contribution of the TAGE component prediction to the corrector sum.
const SC_TAGE_BIAS: i32 = 8;

#[derive(Clone, Debug)]
struct LoopEntry {
    tag: u16,
    /// Learned trip count (taken iterations per loop execution).
    trip: u16,
    /// Taken iterations observed since the last exit (commit order).
    count: u16,
    /// Confidence that `trip` is stable (saturates at [`LOOP_CONF`]).
    conf: u8,
}

/// The TAGE-SC-L conditional predictor.
#[derive(Clone, Debug)]
pub(crate) struct SclCond {
    tage: TageCond,
    loops: Vec<Option<LoopEntry>>,
    /// Corrector weights, `SC_HISTS.len()` tables of [`SC_ENTRIES`] each.
    weights: Vec<i8>,
}

fn loop_index(pc: u64) -> usize {
    (pc >> 2) as usize & (LOOP_ENTRIES - 1)
}

fn loop_tag(pc: u64) -> u16 {
    ((pc >> 2) >> 7) as u16 & 0x3ff
}

fn sc_index(table: usize, pc: u64, ghr: u64) -> usize {
    let hist = SC_HISTS[table];
    let h = if hist == 0 { 0 } else { ghr & ((1u64 << hist) - 1) };
    ((pc >> 2) ^ h ^ (h << 5) ^ (table as u64) << 3) as usize & (SC_ENTRIES - 1)
}

impl SclCond {
    pub(crate) fn new(cfg: &SimConfig) -> SclCond {
        SclCond {
            tage: TageCond::new(cfg),
            loops: vec![None; LOOP_ENTRIES],
            weights: vec![0; SC_HISTS.len() * SC_ENTRIES],
        }
    }

    /// The loop predictor's verdict at `pc`, when it has a confident
    /// trip count: taken while the committed iteration count is below
    /// the learned trip count. Pure read.
    fn loop_pred(&self, pc: u64) -> Option<bool> {
        let e = self.loops[loop_index(pc)].as_ref()?;
        (e.tag == loop_tag(pc) && e.conf >= LOOP_CONF).then_some(e.count < e.trip)
    }

    /// The corrector sum at `(pc, ghr)` given the TAGE component
    /// prediction. Pure read.
    fn sc_sum(&self, pc: u64, ghr: u64, tage_pred: bool) -> i32 {
        let mut sum = if tage_pred { SC_TAGE_BIAS } else { -SC_TAGE_BIAS };
        for t in 0..SC_HISTS.len() {
            sum += i32::from(self.weights[t * SC_ENTRIES + sc_index(t, pc, ghr)]);
        }
        sum
    }

    /// The combined prediction at `(pc, ghr)`: the loop predictor when
    /// confident, otherwise TAGE corrected by the statistical sum when
    /// the sum clears the confidence margin against it.
    fn combined_pred(&self, pc: u64, ghr: u64) -> bool {
        if let Some(p) = self.loop_pred(pc) {
            return p;
        }
        let tage_pred = self.tage.pred_at(pc, ghr);
        let sum = self.sc_sum(pc, ghr, tage_pred);
        if sum.abs() >= SC_THETA {
            sum >= 0
        } else {
            tage_pred
        }
    }

    /// Loop-table train step: count taken iterations, learn the trip
    /// count at each exit, and gain confidence when it repeats.
    fn loop_train(&mut self, pc: u64, taken: bool) {
        let idx = loop_index(pc);
        let tag = loop_tag(pc);
        match &mut self.loops[idx] {
            Some(e) if e.tag == tag => {
                if taken {
                    e.count = e.count.saturating_add(1);
                } else {
                    if e.trip > 0 && e.count == e.trip {
                        e.conf = (e.conf + 1).min(LOOP_CONF);
                    } else {
                        e.trip = e.count;
                        e.conf = u8::from(e.count > 0);
                    }
                    e.count = 0;
                }
            }
            slot => {
                // Allocate over an empty or zero-confidence slot only;
                // a confident resident entry is worth keeping.
                let fresh = LoopEntry { tag, trip: 0, count: u16::from(taken), conf: 0 };
                match slot {
                    None => *slot = Some(fresh),
                    Some(e) if e.conf == 0 => *e = fresh,
                    Some(_) => {}
                }
            }
        }
    }
}

impl CondPredictor for SclCond {
    fn predict(&mut self, pc: Pc, _feed: Option<&OracleFeed>) -> (bool, PredMeta) {
        let ghr = self.tage.ghr();
        let meta = PredMeta { ghr_before: ghr };
        let pred = self.combined_pred(pc.addr(), ghr);
        self.tage.shift_history(pred);
        (pred, meta)
    }

    fn recover(&mut self, meta: PredMeta, actual_taken: bool) {
        self.tage.recover(meta, actual_taken);
    }

    fn train(&mut self, pc: Pc, taken: bool, meta: PredMeta) {
        let a = pc.addr();
        let ghr = meta.ghr_before;
        // Everything the corrector needs is re-derived from pre-train
        // state, so the update order below is a pure function of the
        // commit stream.
        let tage_pred = self.tage.pred_at(a, ghr);
        let sum = self.sc_sum(a, ghr, tage_pred);
        let sc_pred = if sum.abs() >= SC_THETA { sum >= 0 } else { tage_pred };
        if sc_pred != taken || sum.abs() < SC_THETA {
            for t in 0..SC_HISTS.len() {
                let w = &mut self.weights[t * SC_ENTRIES + sc_index(t, a, ghr)];
                *w = if taken { (*w + 1).min(SC_MAX) } else { (*w - 1).max(SC_MIN) };
            }
        }
        self.loop_train(a, taken);
        self.tage.train(pc, taken, meta);
    }

    fn history(&self) -> u64 {
        self.tage.history()
    }

    fn restore_history(&mut self, ghr: u64) {
        self.tage.restore_history(ghr);
    }

    fn occupancy(&self) -> (usize, usize) {
        self.tage.occupancy()
    }

    fn save_state(&self, w: &mut CkptWriter) {
        self.tage.save_state(w);
        w.u64(self.loops.len() as u64);
        for e in &self.loops {
            match e {
                None => w.bool(false),
                Some(e) => {
                    w.bool(true);
                    w.u16(e.tag);
                    w.u16(e.trip);
                    w.u16(e.count);
                    w.u8(e.conf);
                }
            }
        }
        w.u64(self.weights.len() as u64);
        for &v in &self.weights {
            w.i8(v);
        }
    }

    fn load_state(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.tage.load_state(r)?;
        let nl = r.seq_len(1)?;
        if nl != self.loops.len() {
            return Err(CkptError::Corrupt(format!(
                "{nl} loop entries in checkpoint, {} configured",
                self.loops.len()
            )));
        }
        for e in &mut self.loops {
            *e = if r.bool()? {
                Some(LoopEntry { tag: r.u16()?, trip: r.u16()?, count: r.u16()?, conf: r.u8()? })
            } else {
                None
            };
        }
        let nw = r.seq_len(1)?;
        if nw != self.weights.len() {
            return Err(CkptError::Corrupt(format!(
                "{nw} corrector weights in checkpoint, {} configured",
                self.weights.len()
            )));
        }
        for v in &mut self.weights {
            *v = r.i8()?;
        }
        Ok(())
    }
}
