//! The default conditional predictor (bimodal base + TAGE overriding
//! tables, as in the paper's XiangShan-style frontend) and the
//! last-target BTB used as the default indirect predictor.

use mssr_isa::Pc;

use crate::ckpt::{fnv1a64, CkptError, CkptReader, CkptWriter};
use crate::config::SimConfig;

use super::{CondPredictor, IndirectPredictor, OracleFeed, PredMeta};

#[derive(Clone, Debug)]
pub(crate) struct TageEntry {
    pub(crate) tag: u16,
    /// 3-bit signed counter; taken when >= 0.
    pub(crate) ctr: i8,
    /// 2-bit useful counter.
    pub(crate) useful: u8,
}

#[derive(Clone, Debug)]
pub(crate) struct TageTable {
    pub(crate) entries: Vec<Option<TageEntry>>,
    pub(crate) hist_len: u32,
}

impl TageTable {
    fn fold(&self, ghr: u64) -> u64 {
        // Fold `hist_len` bits of history into chunks the size of the
        // index space, XOR-combining chunks.
        let h = if self.hist_len >= 64 { ghr } else { ghr & ((1u64 << self.hist_len) - 1) };
        let bits = (usize::BITS - (self.entries.len() - 1).leading_zeros()).max(1);
        let mut folded = 0u64;
        let mut rest = h;
        let mut taken = 0;
        while taken < self.hist_len {
            folded ^= rest & ((1u64 << bits) - 1);
            rest >>= bits;
            taken += bits;
        }
        folded
    }

    fn index(&self, pc: u64, ghr: u64) -> usize {
        let f = self.fold(ghr);
        ((pc >> 2) ^ f ^ (f << 3) ^ self.hist_len as u64) as usize & (self.entries.len() - 1)
    }

    fn tag(&self, pc: u64, ghr: u64) -> u16 {
        let f = self.fold(ghr);
        (((pc >> 2) ^ (f >> 2) ^ (f << 1)) & 0xff) as u16
    }
}

/// The TAGE + bimodal conditional predictor — the behavior-preserving
/// extraction of the original `BranchPredictor` monolith's conditional
/// half. The global history register is updated *speculatively* at
/// prediction time; [`PredMeta`] carries the pre-prediction snapshot so
/// squashes restore it exactly and training replays the same indices.
#[derive(Clone, Debug)]
pub(crate) struct TageCond {
    bimodal: Vec<u8>,
    tables: Vec<TageTable>,
    ghr: u64,
    /// Deterministic tie-break counter for TAGE allocation.
    alloc_seed: u64,
}

impl TageCond {
    pub(crate) fn new(cfg: &SimConfig) -> TageCond {
        let hist_lens = geometric_histories(cfg.tage_tables);
        TageCond {
            bimodal: vec![2; cfg.bimodal_entries], // weakly taken
            tables: hist_lens
                .into_iter()
                .map(|hist_len| TageTable { entries: vec![None; cfg.tage_entries], hist_len })
                .collect(),
            ghr: 0,
            alloc_seed: 0x9e3779b97f4a7c15,
        }
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.bimodal.len() - 1)
    }

    /// Finds the longest-history hitting table, if any; returns
    /// `(table_index, prediction)`.
    fn tage_lookup(&self, pc: u64, ghr: u64) -> Option<(usize, bool)> {
        for (i, t) in self.tables.iter().enumerate().rev() {
            let idx = t.index(pc, ghr);
            if let Some(e) = &t.entries[idx] {
                if e.tag == t.tag(pc, ghr) {
                    return Some((i, e.ctr >= 0));
                }
            }
        }
        None
    }

    /// The pure prediction at `(pc, ghr)` — the TAGE provider if any
    /// table hits, the bimodal counter otherwise. Reads only; the
    /// statistical corrector re-derives this at train time.
    pub(crate) fn pred_at(&self, pc: u64, ghr: u64) -> bool {
        match self.tage_lookup(pc, ghr) {
            Some((_, p)) => p,
            None => self.bimodal[self.bimodal_index(pc)] >= 2,
        }
    }

    /// The current speculative history (exposed so composing predictors
    /// like TAGE-SC-L can share one history register).
    pub(crate) fn ghr(&self) -> u64 {
        self.ghr
    }

    /// Shifts a predicted outcome into the speculative history.
    pub(crate) fn shift_history(&mut self, pred: bool) {
        self.ghr = (self.ghr << 1) | pred as u64;
    }
}

impl CondPredictor for TageCond {
    fn predict(&mut self, pc: Pc, _feed: Option<&OracleFeed>) -> (bool, PredMeta) {
        let meta = PredMeta { ghr_before: self.ghr };
        let pred = self.pred_at(pc.addr(), self.ghr);
        self.shift_history(pred);
        (pred, meta)
    }

    fn recover(&mut self, meta: PredMeta, actual_taken: bool) {
        self.ghr = (meta.ghr_before << 1) | actual_taken as u64;
    }

    fn train(&mut self, pc: Pc, taken: bool, meta: PredMeta) {
        let a = pc.addr();
        let ghr = meta.ghr_before;
        // Bimodal update (always).
        let bi = self.bimodal_index(a);
        let c = &mut self.bimodal[bi];
        *c = if taken { (*c + 1).min(3) } else { c.saturating_sub(1) };

        let provider = self.tage_lookup(a, ghr);
        let correct = match provider {
            Some((_, p)) => p == taken,
            None => (self.bimodal[bi] >= 2) == taken,
        };
        if let Some((ti, _)) = provider {
            let idx = self.tables[ti].index(a, ghr);
            if let Some(e) = self.tables[ti].entries[idx].as_mut() {
                e.ctr = if taken { (e.ctr + 1).min(3) } else { (e.ctr - 1).max(-4) };
                if correct {
                    e.useful = (e.useful + 1).min(3);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }
        // Allocate a longer-history entry on a misprediction.
        if !correct {
            let start = provider.map_or(0, |(ti, _)| ti + 1);
            self.alloc_seed = self.alloc_seed.wrapping_mul(0xd1342543de82ef95).wrapping_add(1);
            let mut allocated = false;
            for ti in start..self.tables.len() {
                let idx = self.tables[ti].index(a, ghr);
                let tag = self.tables[ti].tag(a, ghr);
                let slot = &mut self.tables[ti].entries[idx];
                match slot {
                    None => {
                        *slot = Some(TageEntry { tag, ctr: if taken { 0 } else { -1 }, useful: 0 });
                        allocated = true;
                        break;
                    }
                    Some(e) if e.useful == 0 => {
                        *e = TageEntry { tag, ctr: if taken { 0 } else { -1 }, useful: 0 };
                        allocated = true;
                        break;
                    }
                    Some(_) => {}
                }
            }
            if !allocated {
                // Decay usefulness so future allocations can succeed.
                for ti in start..self.tables.len() {
                    let idx = self.tables[ti].index(a, ghr);
                    if let Some(e) = self.tables[ti].entries[idx].as_mut() {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
        }
    }

    fn history(&self) -> u64 {
        self.ghr
    }

    fn restore_history(&mut self, ghr: u64) {
        self.ghr = ghr;
    }

    fn occupancy(&self) -> (usize, usize) {
        let tage = self.tables.iter().map(|t| t.entries.iter().flatten().count()).sum();
        let bimodal = self.bimodal.iter().filter(|&&c| c != 2).count();
        (tage, bimodal)
    }

    fn save_state(&self, w: &mut CkptWriter) {
        w.u64(self.bimodal.len() as u64);
        for &c in &self.bimodal {
            w.u8(c);
        }
        w.u64(self.tables.len() as u64);
        for t in &self.tables {
            w.u32(t.hist_len);
            w.u64(t.entries.len() as u64);
            for e in &t.entries {
                match e {
                    None => w.bool(false),
                    Some(e) => {
                        w.bool(true);
                        w.u16(e.tag);
                        w.i8(e.ctr);
                        w.u8(e.useful);
                    }
                }
            }
        }
        w.u64(self.ghr);
        w.u64(self.alloc_seed);
    }

    fn load_state(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let nb = r.seq_len(1)?;
        if nb != self.bimodal.len() {
            return Err(CkptError::Corrupt(format!(
                "{nb} bimodal counters in checkpoint, {} configured",
                self.bimodal.len()
            )));
        }
        for c in &mut self.bimodal {
            *c = r.u8()?;
        }
        let nt = r.seq_len(13)?;
        if nt != self.tables.len() {
            return Err(CkptError::Corrupt(format!(
                "{nt} TAGE tables in checkpoint, {} configured",
                self.tables.len()
            )));
        }
        for t in &mut self.tables {
            let hist_len = r.u32()?;
            if hist_len != t.hist_len {
                return Err(CkptError::Corrupt(format!(
                    "TAGE history length {hist_len} in checkpoint, {} configured",
                    t.hist_len
                )));
            }
            let ne = r.seq_len(1)?;
            if ne != t.entries.len() {
                return Err(CkptError::Corrupt(format!(
                    "{ne} TAGE entries in checkpoint, {} configured",
                    t.entries.len()
                )));
            }
            for e in &mut t.entries {
                *e = if r.bool()? {
                    Some(TageEntry { tag: r.u16()?, ctr: r.i8()?, useful: r.u8()? })
                } else {
                    None
                };
            }
        }
        self.ghr = r.u64()?;
        self.alloc_seed = r.u64()?;
        Ok(())
    }
}

/// The last-target BTB — the default indirect predictor. Updated at
/// writeback (wrong paths included), which is the pinned divergence the
/// warmup-fidelity tests document.
#[derive(Clone, Debug)]
pub(crate) struct Btb {
    entries: Vec<Option<(u64, Pc)>>,
}

impl Btb {
    pub(crate) fn new(cfg: &SimConfig) -> Btb {
        Btb { entries: vec![None; cfg.btb_entries] }
    }

    /// The pure BTB lookup (shared by the trait path and composing
    /// predictors like ITTAGE, which use the BTB as their base table).
    pub(crate) fn lookup(&self, pc: Pc) -> Option<Pc> {
        let idx = (pc.addr() >> 2) as usize & (self.entries.len() - 1);
        match self.entries[idx] {
            Some((tag, target)) if tag == pc.addr() => Some(target),
            _ => None,
        }
    }

    /// Records a resolved target.
    pub(crate) fn record(&mut self, pc: Pc, target: Pc) {
        let idx = (pc.addr() >> 2) as usize & (self.entries.len() - 1);
        self.entries[idx] = Some((pc.addr(), target));
    }

    fn save_entries(&self, w: &mut CkptWriter) {
        for e in &self.entries {
            match e {
                None => w.bool(false),
                Some((tag, target)) => {
                    w.bool(true);
                    w.u64(*tag);
                    w.pc(*target);
                }
            }
        }
    }
}

impl IndirectPredictor for Btb {
    fn predict(&mut self, pc: Pc, _feed: Option<&OracleFeed>) -> Option<Pc> {
        self.lookup(pc)
    }

    fn update(&mut self, pc: Pc, target: Pc) {
        self.record(pc, target);
    }

    fn digest(&self) -> u64 {
        let mut w = CkptWriter::new();
        self.save_entries(&mut w);
        fnv1a64(&w.finish())
    }

    fn save_state(&self, w: &mut CkptWriter) {
        w.u64(self.entries.len() as u64);
        self.save_entries(w);
    }

    fn load_state(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let nbtb = r.seq_len(1)?;
        if nbtb != self.entries.len() {
            return Err(CkptError::Corrupt(format!(
                "{nbtb} BTB entries in checkpoint, {} configured",
                self.entries.len()
            )));
        }
        for e in &mut self.entries {
            *e = if r.bool()? { Some((r.u64()?, r.pc()?)) } else { None };
        }
        Ok(())
    }
}

/// Geometric history lengths for `n` tagged tables (4, 8, 16, … capped at 64).
pub(crate) fn geometric_histories(n: usize) -> Vec<u32> {
    (0..n).map(|i| (4u32 << i).min(64)).collect()
}
