//! An ITTAGE-style indirect-target predictor: tagged tables indexed by
//! a folded target-path history over the last-target BTB base.
//!
//! Like the BTB it replaces in the prediction chain, every mutable
//! structure (tables, base BTB, path history) is updated only at
//! `update` time — the writeback-order resolved-target stream, wrong
//! paths included — so prediction stays a pure read and the predictor
//! needs no per-instruction recovery token beyond the RAS counter the
//! pipeline already snapshots.

use mssr_isa::Pc;

use crate::ckpt::{fnv1a64, CkptError, CkptReader, CkptWriter};
use crate::config::SimConfig;

use super::tage::Btb;
use super::{IndirectPredictor, OracleFeed};

/// Path-history lengths (bits) of the tagged target tables.
const IT_HISTS: [u32; 3] = [4, 8, 16];

#[derive(Clone, Debug)]
struct ItEntry {
    tag: u16,
    target: Pc,
    /// 2-bit replacement confidence.
    conf: u8,
}

#[derive(Clone, Debug)]
struct ItTable {
    entries: Vec<Option<ItEntry>>,
    hist_len: u32,
}

impl ItTable {
    fn fold(&self, hist: u64) -> u64 {
        let h = if self.hist_len >= 64 { hist } else { hist & ((1u64 << self.hist_len) - 1) };
        let bits = (usize::BITS - (self.entries.len() - 1).leading_zeros()).max(1);
        let mut folded = 0u64;
        let mut rest = h;
        let mut taken = 0;
        while taken < self.hist_len {
            folded ^= rest & ((1u64 << bits) - 1);
            rest >>= bits;
            taken += bits;
        }
        folded
    }

    fn index(&self, pc: u64, hist: u64) -> usize {
        let f = self.fold(hist);
        ((pc >> 2) ^ f ^ (f << 2) ^ self.hist_len as u64) as usize & (self.entries.len() - 1)
    }

    fn tag(&self, pc: u64, hist: u64) -> u16 {
        let f = self.fold(hist);
        (((pc >> 2) ^ (f >> 1) ^ (f << 3)) & 0x3ff) as u16
    }
}

/// The ITTAGE indirect predictor.
#[derive(Clone, Debug)]
pub(crate) struct Ittage {
    btb: Btb,
    tables: Vec<ItTable>,
    /// Target-path history, shifted at each resolved indirect target.
    hist: u64,
}

impl Ittage {
    pub(crate) fn new(cfg: &SimConfig) -> Ittage {
        Ittage {
            btb: Btb::new(cfg),
            tables: IT_HISTS
                .iter()
                .map(|&hist_len| ItTable { entries: vec![None; cfg.btb_entries], hist_len })
                .collect(),
            hist: 0,
        }
    }

    /// The longest tag-matching table, if any.
    fn provider(&self, pc: u64) -> Option<usize> {
        for (i, t) in self.tables.iter().enumerate().rev() {
            let idx = t.index(pc, self.hist);
            if let Some(e) = &t.entries[idx] {
                if e.tag == t.tag(pc, self.hist) {
                    return Some(i);
                }
            }
        }
        None
    }
}

impl IndirectPredictor for Ittage {
    fn predict(&mut self, pc: Pc, _feed: Option<&OracleFeed>) -> Option<Pc> {
        let a = pc.addr();
        match self.provider(a) {
            Some(i) => {
                let t = &self.tables[i];
                t.entries[t.index(a, self.hist)].as_ref().map(|e| e.target)
            }
            None => self.btb.lookup(pc),
        }
    }

    fn update(&mut self, pc: Pc, target: Pc) {
        let a = pc.addr();
        let provider = self.provider(a);
        let correct = match provider {
            Some(i) => {
                let t = &self.tables[i];
                t.entries[t.index(a, self.hist)].as_ref().is_some_and(|e| e.target == target)
            }
            None => self.btb.lookup(pc) == Some(target),
        };
        if let Some(i) = provider {
            let idx = self.tables[i].index(a, self.hist);
            if let Some(e) = self.tables[i].entries[idx].as_mut() {
                if e.target == target {
                    e.conf = (e.conf + 1).min(3);
                } else if e.conf == 0 {
                    e.target = target;
                } else {
                    e.conf -= 1;
                }
            }
        }
        if !correct {
            // Allocate a longer-history entry, evicting only
            // zero-confidence residents; decay confidence when every
            // candidate slot is defended (mirrors TAGE allocation).
            let start = provider.map_or(0, |i| i + 1);
            let mut allocated = false;
            for i in start..self.tables.len() {
                let idx = self.tables[i].index(a, self.hist);
                let tag = self.tables[i].tag(a, self.hist);
                let slot = &mut self.tables[i].entries[idx];
                match slot {
                    None => {
                        *slot = Some(ItEntry { tag, target, conf: 0 });
                        allocated = true;
                        break;
                    }
                    Some(e) if e.conf == 0 => {
                        *e = ItEntry { tag, target, conf: 0 };
                        allocated = true;
                        break;
                    }
                    Some(_) => {}
                }
            }
            if !allocated {
                for i in start..self.tables.len() {
                    let idx = self.tables[i].index(a, self.hist);
                    if let Some(e) = self.tables[i].entries[idx].as_mut() {
                        e.conf = e.conf.saturating_sub(1);
                    }
                }
            }
        }
        self.btb.record(pc, target);
        self.hist = (self.hist << 2) ^ (target.addr() >> 2);
    }

    fn digest(&self) -> u64 {
        let mut w = CkptWriter::new();
        self.save_state(&mut w);
        fnv1a64(&w.finish())
    }

    fn save_state(&self, w: &mut CkptWriter) {
        self.btb.save_state(w);
        w.u64(self.tables.len() as u64);
        for t in &self.tables {
            w.u32(t.hist_len);
            w.u64(t.entries.len() as u64);
            for e in &t.entries {
                match e {
                    None => w.bool(false),
                    Some(e) => {
                        w.bool(true);
                        w.u16(e.tag);
                        w.pc(e.target);
                        w.u8(e.conf);
                    }
                }
            }
        }
        w.u64(self.hist);
    }

    fn load_state(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.btb.load_state(r)?;
        let nt = r.seq_len(13)?;
        if nt != self.tables.len() {
            return Err(CkptError::Corrupt(format!(
                "{nt} ITTAGE tables in checkpoint, {} configured",
                self.tables.len()
            )));
        }
        for t in &mut self.tables {
            let hist_len = r.u32()?;
            if hist_len != t.hist_len {
                return Err(CkptError::Corrupt(format!(
                    "ITTAGE history length {hist_len} in checkpoint, {} configured",
                    t.hist_len
                )));
            }
            let ne = r.seq_len(1)?;
            if ne != t.entries.len() {
                return Err(CkptError::Corrupt(format!(
                    "{ne} ITTAGE entries in checkpoint, {} configured",
                    t.entries.len()
                )));
            }
            for e in &mut t.entries {
                *e = if r.bool()? {
                    Some(ItEntry { tag: r.u16()?, target: r.pc()?, conf: r.u8()? })
                } else {
                    None
                };
            }
        }
        self.hist = r.u64()?;
        Ok(())
    }
}
