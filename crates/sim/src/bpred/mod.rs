//! Branch prediction: a pluggable predictor lab behind one facade.
//!
//! The frontend talks to [`BranchPredictor`], which composes one
//! [`CondPredictor`] (conditional directions) and one
//! [`IndirectPredictor`] (`jalr` targets) selected by
//! [`BpredKind`] — enum dispatch, so the hot path stays zero-alloc and
//! monomorphizable. The conditional history register is updated
//! *speculatively* at prediction time: every prediction returns a
//! [`PredMeta`] snapshot of the pre-prediction history, the pipeline
//! stores it per in-flight branch, and squashes restore it exactly.
//! The oracle predictors reuse the same two recovery tokens (history
//! snapshot, RAS counter) as feed cursors — see [`OracleFeed`].
//!
//! | kind          | conditional            | indirect        |
//! |---------------|------------------------|-----------------|
//! | `tage`        | bimodal + TAGE         | BTB + RAS       |
//! | `tagescl`     | TAGE-SC-L              | BTB + RAS       |
//! | `ittage`      | bimodal + TAGE         | ITTAGE + RAS    |
//! | `alwayswrong` | inverted oracle        | BTB + RAS       |
//! | `oracle`      | oracle                 | oracle          |

mod ittage;
mod oracle;
mod scl;
mod tage;

use mssr_isa::Pc;

use crate::ckpt::{fnv1a64, CkptError, CkptReader, CkptWriter};
use crate::config::SimConfig;

pub use oracle::OracleFeed;

/// Snapshot of predictor state at prediction time.
///
/// Carried through the pipeline with each branch; passed back to
/// [`BranchPredictor::train_cond`] at commit and used to restore history
/// on a squash.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PredMeta {
    /// GHR value *before* this prediction shifted its outcome in (for
    /// the oracle-fed predictors: the feed cursor before this
    /// prediction consumed its slot).
    pub ghr_before: u64,
}

/// Which predictor pair the frontend runs — the `--bpred` axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BpredKind {
    /// Bimodal + TAGE conditional, BTB/RAS indirect (the default, and
    /// the behavior-preserving image of the original monolith).
    #[default]
    Tage,
    /// TAGE-SC-L conditional (loop predictor + statistical corrector),
    /// BTB/RAS indirect.
    TageScl,
    /// Bimodal + TAGE conditional, ITTAGE indirect.
    Ittage,
    /// Adversarial: every committed conditional branch mispredicts
    /// (oracle-fed inverted), BTB/RAS indirect.
    AlwaysWrong,
    /// Perfect conditional and indirect prediction from the
    /// architectural interpreter stream.
    Oracle,
}

impl BpredKind {
    /// Every kind, in sweep order.
    pub const ALL: [BpredKind; 5] = [
        BpredKind::Tage,
        BpredKind::TageScl,
        BpredKind::Ittage,
        BpredKind::AlwaysWrong,
        BpredKind::Oracle,
    ];

    /// The kind's `--bpred` name.
    pub fn name(self) -> &'static str {
        match self {
            BpredKind::Tage => "tage",
            BpredKind::TageScl => "tagescl",
            BpredKind::Ittage => "ittage",
            BpredKind::AlwaysWrong => "alwayswrong",
            BpredKind::Oracle => "oracle",
        }
    }

    /// Parses a `--bpred` name.
    pub fn parse(s: &str) -> Option<BpredKind> {
        BpredKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether this kind needs the architectural [`OracleFeed`].
    pub fn needs_feed(self) -> bool {
        matches!(self, BpredKind::AlwaysWrong | BpredKind::Oracle)
    }

    /// Checkpoint identity tag (belt-and-suspenders under the config
    /// hash already guarding restores).
    fn tag(self) -> u8 {
        match self {
            BpredKind::Tage => 0,
            BpredKind::TageScl => 1,
            BpredKind::Ittage => 2,
            BpredKind::AlwaysWrong => 3,
            BpredKind::Oracle => 4,
        }
    }
}

impl std::fmt::Display for BpredKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A conditional-direction predictor.
///
/// `predict` may mutate only speculative state recoverable through
/// [`PredMeta`] / `restore_history`; everything else must move at
/// `train` time (commit order) so functional warmup replays it exactly.
pub trait CondPredictor {
    /// Predicts the branch at `pc`, speculatively advancing history.
    fn predict(&mut self, pc: Pc, feed: Option<&OracleFeed>) -> (bool, PredMeta);
    /// Records the *actual* outcome after a misprediction of the branch
    /// that produced `meta` (the branch itself survives the squash).
    fn recover(&mut self, meta: PredMeta, actual_taken: bool);
    /// Trains with a retired branch outcome; `meta` must be that
    /// dynamic branch's prediction snapshot.
    fn train(&mut self, pc: Pc, taken: bool, meta: PredMeta);
    /// The current speculative history (or feed cursor).
    fn history(&self) -> u64;
    /// Restores the speculative history (squash or probe undo).
    fn restore_history(&mut self, h: u64);
    /// `(tagged entries filled, base counters moved off reset)`.
    fn occupancy(&self) -> (usize, usize);
    /// Serializes the predictor state (checkpoint codec).
    fn save_state(&self, w: &mut CkptWriter);
    /// Restores state written by `save_state` of the same predictor
    /// under the same configuration.
    fn load_state(&mut self, r: &mut CkptReader) -> Result<(), CkptError>;
}

/// An indirect-target (`jalr`) predictor.
pub trait IndirectPredictor {
    /// Predicts the target of the indirect jump at `pc`, if known.
    fn predict(&mut self, pc: Pc, feed: Option<&OracleFeed>) -> Option<Pc>;
    /// Records a resolved target (writeback order, wrong paths
    /// included).
    fn update(&mut self, pc: Pc, target: Pc);
    /// Digest of the predictor's target state.
    fn digest(&self) -> u64;
    /// Serializes the predictor state (checkpoint codec).
    fn save_state(&self, w: &mut CkptWriter);
    /// Restores state written by `save_state` of the same predictor
    /// under the same configuration.
    fn load_state(&mut self, r: &mut CkptReader) -> Result<(), CkptError>;
}

/// Enum dispatch over the conditional predictors.
#[derive(Clone, Debug)]
enum CondDispatch {
    Tage(tage::TageCond),
    Scl(scl::SclCond),
    AlwaysWrong(oracle::AlwaysWrongCond),
    Oracle(oracle::OracleCond),
}

macro_rules! cond_each {
    ($self:expr, $p:ident => $e:expr) => {
        match $self {
            CondDispatch::Tage($p) => $e,
            CondDispatch::Scl($p) => $e,
            CondDispatch::AlwaysWrong($p) => $e,
            CondDispatch::Oracle($p) => $e,
        }
    };
}

impl CondPredictor for CondDispatch {
    fn predict(&mut self, pc: Pc, feed: Option<&OracleFeed>) -> (bool, PredMeta) {
        cond_each!(self, p => p.predict(pc, feed))
    }

    fn recover(&mut self, meta: PredMeta, actual_taken: bool) {
        cond_each!(self, p => p.recover(meta, actual_taken))
    }

    fn train(&mut self, pc: Pc, taken: bool, meta: PredMeta) {
        cond_each!(self, p => p.train(pc, taken, meta))
    }

    fn history(&self) -> u64 {
        cond_each!(self, p => p.history())
    }

    fn restore_history(&mut self, h: u64) {
        cond_each!(self, p => p.restore_history(h))
    }

    fn occupancy(&self) -> (usize, usize) {
        cond_each!(self, p => p.occupancy())
    }

    fn save_state(&self, w: &mut CkptWriter) {
        cond_each!(self, p => p.save_state(w))
    }

    fn load_state(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        cond_each!(self, p => p.load_state(r))
    }
}

/// Enum dispatch over the indirect predictors.
#[derive(Clone, Debug)]
enum IndirDispatch {
    Btb(tage::Btb),
    Ittage(ittage::Ittage),
    Oracle(oracle::OracleIndirect),
}

macro_rules! indir_each {
    ($self:expr, $p:ident => $e:expr) => {
        match $self {
            IndirDispatch::Btb($p) => $e,
            IndirDispatch::Ittage($p) => $e,
            IndirDispatch::Oracle($p) => $e,
        }
    };
}

impl IndirectPredictor for IndirDispatch {
    fn predict(&mut self, pc: Pc, feed: Option<&OracleFeed>) -> Option<Pc> {
        indir_each!(self, p => p.predict(pc, feed))
    }

    fn update(&mut self, pc: Pc, target: Pc) {
        indir_each!(self, p => p.update(pc, target))
    }

    fn digest(&self) -> u64 {
        indir_each!(self, p => p.digest())
    }

    fn save_state(&self, w: &mut CkptWriter) {
        indir_each!(self, p => p.save_state(w))
    }

    fn load_state(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        indir_each!(self, p => p.load_state(r))
    }
}

/// Return-address stack: a circular buffer indexed by an unbounded
/// top-of-stack counter, so squash recovery only restores the counter.
#[derive(Clone, Debug)]
struct Ras {
    entries: Vec<Pc>,
    sp: u64,
}

impl Ras {
    fn new(depth: usize) -> Ras {
        Ras { entries: vec![Pc::new(0); depth], sp: 0 }
    }

    fn push(&mut self, ret: Pc) {
        let idx = (self.sp % self.entries.len() as u64) as usize;
        self.entries[idx] = ret;
        self.sp += 1;
    }

    fn pop(&mut self) -> Option<Pc> {
        if self.sp == 0 {
            return None;
        }
        self.sp -= 1;
        let idx = (self.sp % self.entries.len() as u64) as usize;
        Some(self.entries[idx])
    }
}

/// The frontend branch predictor facade: one conditional and one
/// indirect predictor (selected by [`SimConfig::bpred`]) plus the
/// return-address stack and, for the oracle-fed kinds, the
/// architectural feed.
///
/// # Example
///
/// ```
/// use mssr_sim::{BranchPredictor, SimConfig};
/// use mssr_isa::Pc;
///
/// let mut bp = BranchPredictor::new(&SimConfig::default());
/// let pc = Pc::new(0x1000);
/// // Train a strongly-taken branch and observe the prediction follow.
/// for _ in 0..16 {
///     let (_, meta) = bp.predict_cond(pc);
///     bp.train_cond(pc, true, meta);
/// }
/// let (pred, meta) = bp.predict_cond(pc);
/// assert!(pred);
/// // Undo the speculative history update from the probe prediction.
/// bp.restore_ghr(meta.ghr_before);
/// ```
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    kind: BpredKind,
    cond: CondDispatch,
    indir: IndirDispatch,
    ras: Ras,
    feed: Option<OracleFeed>,
}

impl BranchPredictor {
    /// Builds the predictor pair selected and sized by `cfg`.
    pub fn new(cfg: &SimConfig) -> BranchPredictor {
        let cond = match cfg.bpred {
            BpredKind::Tage | BpredKind::Ittage => CondDispatch::Tage(tage::TageCond::new(cfg)),
            BpredKind::TageScl => CondDispatch::Scl(scl::SclCond::new(cfg)),
            BpredKind::AlwaysWrong => CondDispatch::AlwaysWrong(oracle::AlwaysWrongCond::default()),
            BpredKind::Oracle => CondDispatch::Oracle(oracle::OracleCond::default()),
        };
        let indir = match cfg.bpred {
            BpredKind::Tage | BpredKind::TageScl | BpredKind::AlwaysWrong => {
                IndirDispatch::Btb(tage::Btb::new(cfg))
            }
            BpredKind::Ittage => IndirDispatch::Ittage(ittage::Ittage::new(cfg)),
            BpredKind::Oracle => IndirDispatch::Oracle(oracle::OracleIndirect::default()),
        };
        BranchPredictor { kind: cfg.bpred, cond, indir, ras: Ras::new(16), feed: None }
    }

    /// The configured predictor kind.
    pub fn kind(&self) -> BpredKind {
        self.kind
    }

    /// Whether this predictor still needs its [`OracleFeed`] installed
    /// (oracle-fed kind, no feed yet — the pipeline computes and
    /// installs it lazily before the first cycle).
    pub(crate) fn feed_pending(&self) -> bool {
        self.kind.needs_feed() && self.feed.is_none()
    }

    /// Installs the architectural feed (oracle-fed kinds only). The
    /// pipeline calls this lazily before the first cycle; tests driving
    /// the predictor directly install a hand-built
    /// [`OracleFeed::from_streams`] instead.
    pub fn install_feed(&mut self, feed: OracleFeed) {
        self.feed = Some(feed);
    }

    /// The installed feed, if any (test inspection).
    pub fn feed(&self) -> Option<&OracleFeed> {
        self.feed.as_ref()
    }

    /// Pushes a return address (speculatively, at call prediction).
    /// A no-op under the oracle indirect predictor, whose `jalr`
    /// cursor replaces the RAS.
    pub fn ras_push(&mut self, ret: Pc) {
        if matches!(self.indir, IndirDispatch::Oracle(_)) {
            return;
        }
        self.ras.push(ret);
    }

    /// Pops the predicted return address, or `None` when the stack is
    /// empty. The stack is a predictor: stale entries after deep
    /// recursion or imprecise recovery simply mispredict. Always `None`
    /// under the oracle indirect predictor, so return prediction falls
    /// through to the feed cursor.
    pub fn ras_pop(&mut self) -> Option<Pc> {
        if matches!(self.indir, IndirDispatch::Oracle(_)) {
            return None;
        }
        self.ras.pop()
    }

    /// Current top-of-stack counter (snapshotted per instruction for
    /// squash recovery). Under the oracle indirect predictor this is
    /// the feed cursor — same token, same recovery discipline.
    pub fn ras_sp(&self) -> u64 {
        match &self.indir {
            IndirDispatch::Oracle(o) => o.cursor(),
            _ => self.ras.sp,
        }
    }

    /// Restores the top-of-stack counter after a squash. Entry contents
    /// are not restored — occasional stale-entry mispredictions are the
    /// standard cost of counter-only RAS recovery.
    pub fn restore_ras_sp(&mut self, sp: u64) {
        match &mut self.indir {
            IndirDispatch::Oracle(o) => o.set_cursor(sp),
            _ => self.ras.sp = sp,
        }
    }

    /// Current speculative global history (feed cursor for the
    /// oracle-fed kinds).
    pub fn ghr(&self) -> u64 {
        self.cond.history()
    }

    /// Restores the speculative history (on squash or probe undo).
    pub fn restore_ghr(&mut self, ghr: u64) {
        self.cond.restore_history(ghr);
    }

    /// Predicts a conditional branch at `pc` and speculatively shifts the
    /// predicted outcome into the history. Returns the prediction and the
    /// metadata needed to train or undo it.
    pub fn predict_cond(&mut self, pc: Pc) -> (bool, PredMeta) {
        self.cond.predict(pc, self.feed.as_ref())
    }

    /// Records the *actual* outcome into the speculative history after a
    /// misprediction recovery: call with the GHR snapshot of the
    /// mispredicted branch.
    pub fn recover_cond(&mut self, meta: PredMeta, actual_taken: bool) {
        self.cond.recover(meta, actual_taken);
    }

    /// Trains the predictor with a retired branch outcome.
    ///
    /// `meta` must be the snapshot returned by the prediction for this
    /// dynamic branch so the same table indices are updated.
    pub fn train_cond(&mut self, pc: Pc, taken: bool, meta: PredMeta) {
        self.cond.train(pc, taken, meta);
    }

    /// Predicts the target of an indirect jump, if the indirect
    /// predictor has one (mutable because the oracle cursor advances;
    /// the table-based predictors only read here).
    pub fn predict_indirect(&mut self, pc: Pc) -> Option<Pc> {
        self.indir.predict(pc, self.feed.as_ref())
    }

    /// Records the resolved target of an indirect jump.
    pub fn update_indirect(&mut self, pc: Pc, target: Pc) {
        self.indir.update(pc, target);
    }

    /// Digest of the conditional-prediction state — the conditional
    /// predictor's full serialized state (counters, tables, global
    /// history, allocation seed) plus the RAS top-of-stack counter.
    /// Functional fast-forward warming is exactly commit-equivalent for
    /// all of it, so the warmup-fidelity tests assert digest *equality*
    /// between a functional and a cycle-accurate run of the same
    /// instructions. (The RAS entry contents and the indirect tables
    /// are intentionally excluded: both are perturbed by wrong-path
    /// execution in the detailed pipeline. The counter is included —
    /// squash recovery restores it exactly, so two states differing
    /// only in stack depth must hash differently.)
    pub fn cond_digest(&self) -> u64 {
        let mut w = CkptWriter::new();
        self.cond.save_state(&mut w);
        w.u64(self.ras_sp());
        fnv1a64(&w.finish())
    }

    /// Occupancy of the conditional tables: `(filled tagged entries,
    /// base counters moved off their reset value)`.
    pub fn cond_occupancy(&self) -> (usize, usize) {
        self.cond.occupancy()
    }

    /// Digest of the indirect predictor's target state (a pinned
    /// *divergence* in the warmup-fidelity tests: the detailed pipeline
    /// updates it at writeback, wrong paths included).
    pub fn btb_digest(&self) -> u64 {
        self.indir.digest()
    }

    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u8(self.kind.tag());
        self.cond.save_state(w);
        self.indir.save_state(w);
        for &p in &self.ras.entries {
            w.pc(p);
        }
        w.u64(self.ras.sp);
        match &self.feed {
            None => w.bool(false),
            Some(f) => {
                w.bool(true);
                f.save(w);
            }
        }
    }

    pub(crate) fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let tag = r.u8()?;
        if tag != self.kind.tag() {
            return Err(CkptError::Corrupt(format!(
                "predictor kind tag {tag} in checkpoint, {} ({}) configured",
                self.kind.tag(),
                self.kind
            )));
        }
        self.cond.load_state(r)?;
        self.indir.load_state(r)?;
        for p in &mut self.ras.entries {
            *p = r.pc()?;
        }
        self.ras.sp = r.u64()?;
        self.feed = if r.bool()? { Some(OracleFeed::load(r)?) } else { None };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(&SimConfig::default())
    }

    fn bp_kind(kind: BpredKind) -> BranchPredictor {
        BranchPredictor::new(&SimConfig { bpred: kind, ..SimConfig::default() })
    }

    #[test]
    fn learns_strongly_biased_branch() {
        let mut p = bp();
        let pc = Pc::new(0x1000);
        for _ in 0..32 {
            let (_, m) = p.predict_cond(pc);
            p.train_cond(pc, true, m);
        }
        let (pred, m) = p.predict_cond(pc);
        p.restore_ghr(m.ghr_before);
        assert!(pred);
    }

    #[test]
    fn learns_not_taken() {
        let mut p = bp();
        let pc = Pc::new(0x2000);
        for _ in 0..32 {
            let (_, m) = p.predict_cond(pc);
            p.train_cond(pc, false, m);
        }
        let (pred, m) = p.predict_cond(pc);
        p.restore_ghr(m.ghr_before);
        assert!(!pred);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // A strict alternation is unpredictable to bimodal but trivial for
        // any history-based table.
        for kind in [BpredKind::Tage, BpredKind::TageScl] {
            let mut p = bp_kind(kind);
            let pc = Pc::new(0x3000);
            let mut correct = 0;
            let mut total = 0;
            for i in 0..2000u64 {
                let taken = i % 2 == 0;
                let (pred, m) = p.predict_cond(pc);
                if i >= 1000 {
                    total += 1;
                    if pred == taken {
                        correct += 1;
                    }
                }
                // Simulate perfect in-order resolution.
                if pred != taken {
                    p.recover_cond(m, taken);
                }
                p.train_cond(pc, taken, m);
            }
            assert!(
                correct as f64 / total as f64 > 0.9,
                "{kind} should learn alternation, got {correct}/{total}"
            );
        }
    }

    #[test]
    fn scl_loop_predictor_learns_a_fixed_trip_count() {
        // An 11-iteration loop: TAGE with 64-bit history can learn this
        // too, so drive the branch through a *noisy* history (distinct
        // outer contexts) where the loop table's trip count is the only
        // stable signal. In-order resolution, measured after warmup.
        let mut p = bp_kind(BpredKind::TageScl);
        let pc = Pc::new(0x5000);
        let noise = Pc::new(0x7000);
        let mut wrong = 0u64;
        let mut total = 0u64;
        let mut rng = 0x1234_5678_9abc_def0u64;
        for outer in 0..400u64 {
            // A few data-dependent noise branches between loop runs.
            for _ in 0..5 {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let taken = rng >> 63 == 1;
                let (pred, m) = p.predict_cond(noise);
                if pred != taken {
                    p.recover_cond(m, taken);
                }
                p.train_cond(noise, taken, m);
            }
            for i in 0..=10u64 {
                let taken = i < 10; // 10 taken iterations, then exit
                let (pred, m) = p.predict_cond(pc);
                if outer >= 100 {
                    total += 1;
                    if pred != taken {
                        wrong += 1;
                    }
                }
                if pred != taken {
                    p.recover_cond(m, taken);
                }
                p.train_cond(pc, taken, m);
            }
        }
        assert!(
            wrong * 100 < total * 5,
            "loop predictor should nail a fixed trip count, {wrong}/{total} wrong"
        );
    }

    #[test]
    fn speculative_history_shifts_and_restores() {
        let mut p = bp();
        let g0 = p.ghr();
        let (pred, m) = p.predict_cond(Pc::new(0x10));
        assert_eq!(p.ghr(), (g0 << 1) | pred as u64);
        assert_eq!(m.ghr_before, g0);
        p.restore_ghr(m.ghr_before);
        assert_eq!(p.ghr(), g0);
        p.recover_cond(m, !pred);
        assert_eq!(p.ghr(), (g0 << 1) | (!pred) as u64);
    }

    #[test]
    fn indirect_btb_remembers_last_target() {
        let mut p = bp();
        let pc = Pc::new(0x4000);
        assert_eq!(p.predict_indirect(pc), None);
        p.update_indirect(pc, Pc::new(0x8000));
        assert_eq!(p.predict_indirect(pc), Some(Pc::new(0x8000)));
        p.update_indirect(pc, Pc::new(0x9000));
        assert_eq!(p.predict_indirect(pc), Some(Pc::new(0x9000)));
        // A different PC indexing the same set but different tag misses.
        assert_eq!(p.predict_indirect(Pc::new(0x4000 + (1 << 14))), None);
    }

    #[test]
    fn ittage_learns_history_correlated_targets() {
        // One indirect jump alternating between two targets in a strict
        // pattern: the last-target BTB is wrong half the time, the
        // history-indexed tables should learn the alternation.
        let mut p = bp_kind(BpredKind::Ittage);
        let pc = Pc::new(0x4000);
        let targets = [Pc::new(0x8000), Pc::new(0x9000)];
        let mut correct = 0u64;
        let mut total = 0u64;
        for i in 0..4000u64 {
            let t = targets[(i % 2) as usize];
            let pred = p.predict_indirect(pc);
            if i >= 2000 {
                total += 1;
                if pred == Some(t) {
                    correct += 1;
                }
            }
            p.update_indirect(pc, t);
        }
        assert!(
            correct * 100 > total * 90,
            "ITTAGE should learn target alternation, got {correct}/{total}"
        );
    }

    #[test]
    fn ras_predicts_matched_calls() {
        let mut p = bp();
        p.ras_push(Pc::new(0x104));
        p.ras_push(Pc::new(0x204));
        assert_eq!(p.ras_pop(), Some(Pc::new(0x204)), "LIFO");
        assert_eq!(p.ras_pop(), Some(Pc::new(0x104)));
        assert_eq!(p.ras_pop(), None, "empty stack");
    }

    #[test]
    fn ras_counter_recovery() {
        let mut p = bp();
        p.ras_push(Pc::new(0x104));
        let sp = p.ras_sp();
        p.ras_push(Pc::new(0x204)); // wrong-path call
        let _ = p.ras_pop(); // wrong-path return
        p.restore_ras_sp(sp); // squash recovery
        assert_eq!(p.ras_pop(), Some(Pc::new(0x104)), "original entry survives");
    }

    #[test]
    fn ras_wraps_at_capacity_with_stale_predictions() {
        let mut p = bp();
        for i in 0..20u64 {
            p.ras_push(Pc::new(0x1000 + 4 * i));
        }
        // Deeper than 16 entries: the oldest were overwritten; the newest
        // 16 predict correctly, older pops return stale (wrapped) values.
        for i in (4..20u64).rev() {
            assert_eq!(p.ras_pop(), Some(Pc::new(0x1000 + 4 * i)));
        }
        // These four were overwritten by the wrap; values are stale but
        // pops still succeed (a predictor may be wrong, never stuck).
        for _ in 0..4 {
            assert!(p.ras_pop().is_some());
        }
        assert_eq!(p.ras_pop(), None);
    }

    #[test]
    fn geometric_history_lengths() {
        assert_eq!(tage::geometric_histories(5), vec![4, 8, 16, 32, 64]);
        assert_eq!(tage::geometric_histories(7), vec![4, 8, 16, 32, 64, 64, 64]);
    }

    #[test]
    fn bpred_kind_names_round_trip() {
        for kind in BpredKind::ALL {
            assert_eq!(BpredKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BpredKind::parse("perceptron"), None);
        assert_eq!(BpredKind::default(), BpredKind::Tage);
    }

    #[test]
    fn cond_digest_folds_in_the_ras_counter() {
        // Regression: two predictor states differing only in RAS depth
        // used to hash equal, hiding stack-depth divergence from the
        // warmup-fidelity tests.
        let mut p = bp();
        let d0 = p.cond_digest();
        p.ras_push(Pc::new(0x104));
        assert_ne!(p.cond_digest(), d0, "RAS counter must reach the digest");
        let _ = p.ras_pop();
        assert_eq!(p.cond_digest(), d0, "digest follows the counter back");
    }

    #[test]
    fn oracle_cursors_follow_the_feed_and_recover() {
        let mut p = bp_kind(BpredKind::Oracle);
        let mut feed = OracleFeed::default();
        for &t in &[true, false, true, true] {
            feed.push_cond(t);
        }
        feed.push_jalr(Pc::new(0x800));
        feed.push_jalr(Pc::new(0x900));
        p.install_feed(feed);
        let pc = Pc::new(0x10);
        let (p0, m0) = p.predict_cond(pc);
        let (p1, m1) = p.predict_cond(pc);
        assert_eq!((p0, p1), (true, false));
        assert_eq!((m0.ghr_before, m1.ghr_before), (0, 1));
        // Squash recovery realigns the cursor past the surviving branch.
        p.recover_cond(m1, false);
        let (p2, _) = p.predict_cond(pc);
        assert!(p2, "third outcome after recovery");
        // Indirect cursor rides the RAS token and ignores push/pop.
        p.ras_push(Pc::new(0x44));
        assert_eq!(p.ras_pop(), None, "oracle indirect replaces the RAS");
        let sp = p.ras_sp();
        assert_eq!(p.predict_indirect(pc), Some(Pc::new(0x800)));
        assert_eq!(p.predict_indirect(pc), Some(Pc::new(0x900)));
        assert_eq!(p.predict_indirect(pc), None, "beyond the feed");
        p.restore_ras_sp(sp);
        assert_eq!(p.predict_indirect(pc), Some(Pc::new(0x800)), "cursor restored");
    }

    #[test]
    fn always_wrong_inverts_the_feed() {
        let mut p = bp_kind(BpredKind::AlwaysWrong);
        let mut feed = OracleFeed::default();
        feed.push_cond(true);
        feed.push_cond(false);
        p.install_feed(feed);
        let pc = Pc::new(0x10);
        assert!(!p.predict_cond(pc).0, "taken branch predicted not-taken");
        assert!(p.predict_cond(pc).0, "not-taken branch predicted taken");
    }

    #[test]
    fn oracle_feed_bitpacking_round_trips_past_a_word() {
        let mut feed = OracleFeed::default();
        let outcome = |i: u64| i.is_multiple_of(3);
        for i in 0..130 {
            feed.push_cond(outcome(i));
        }
        assert_eq!(feed.cond_len(), 130);
        for i in 0..130 {
            assert_eq!(feed.cond(i), Some(outcome(i)), "bit {i}");
        }
        assert_eq!(feed.cond(130), None);
        let mut w = CkptWriter::new();
        feed.save(&mut w);
        let bytes = w.finish();
        let mut r = CkptReader::new(&bytes);
        assert_eq!(OracleFeed::load(&mut r).expect("round trip"), feed);
    }
}
