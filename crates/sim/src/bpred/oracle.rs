//! Oracle-fed predictors: a perfect conditional/indirect predictor and
//! an always-wrong adversarial conditional predictor, both driven by an
//! [`OracleFeed`] — the architectural interpreter's branch stream,
//! replayed ahead of detailed simulation.
//!
//! The feed contract: the feed is computed from a *pristine* simulator
//! (architectural registers all zero, workload memory image already
//! written) by replaying the shared [`arch_step`] semantics over a
//! clone of simulated memory, collecting every conditional outcome and
//! every `jalr` target in architectural order. Oracle predictors walk
//! the feed with cursors that ride the pipeline's existing recovery
//! tokens — `PredMeta::ghr_before` for the conditional cursor and the
//! RAS top-of-stack counter for the indirect cursor — so squash
//! recovery realigns them with no new pipeline state. Because the feed
//! is a function of the initial state, it is serialized into
//! checkpoints rather than recomputed: a restored mid-run simulator
//! could not rebuild it.

use mssr_isa::{Pc, Program, NUM_ARCH_REGS};

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::interp::{arch_step, ArchKind, ArchState};
use crate::mem::MainMemory;

use super::{CondPredictor, IndirectPredictor, PredMeta};

/// The architectural branch stream: bitpacked conditional outcomes and
/// `jalr` targets, in program order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OracleFeed {
    cond_bits: Vec<u64>,
    n_cond: u64,
    jalr: Vec<Pc>,
}

impl OracleFeed {
    /// Replays up to `max_insts` instructions of `program` against a
    /// clone of `memory` (architectural registers start at zero, as in
    /// a pristine pipeline), recording the branch stream. Stops early
    /// at `halt` or when control leaves the program image — exactly the
    /// conditions that stop detailed simulation.
    pub(crate) fn compute(program: &Program, memory: &MainMemory, max_insts: u64) -> OracleFeed {
        let mut st = FeedState { regs: [0; NUM_ARCH_REGS], memory: memory.clone() };
        let mut feed = OracleFeed::default();
        let mut pc = program.base();
        let mut executed = 0u64;
        while executed < max_insts {
            let Some(out) = arch_step(program, pc, &mut st) else {
                break;
            };
            executed += 1;
            match out.kind {
                ArchKind::Cond { taken } => feed.push_cond(taken),
                ArchKind::Jalr { target } => feed.push_jalr(target),
                _ => {}
            }
            match out.next {
                Some(next) => pc = next,
                None => break,
            }
        }
        feed
    }

    /// Builds a feed from explicit streams — the test-side entry point
    /// for driving the oracle predictors with a hand-written branch
    /// trace instead of an interpreter replay.
    pub fn from_streams(cond: &[bool], jalr: &[Pc]) -> OracleFeed {
        let mut feed = OracleFeed::default();
        for &taken in cond {
            feed.push_cond(taken);
        }
        for &target in jalr {
            feed.push_jalr(target);
        }
        feed
    }

    pub(crate) fn push_cond(&mut self, taken: bool) {
        let bit = self.n_cond % 64;
        if bit == 0 {
            self.cond_bits.push(0);
        }
        if taken {
            *self.cond_bits.last_mut().expect("pushed above") |= 1 << bit;
        }
        self.n_cond += 1;
    }

    pub(crate) fn push_jalr(&mut self, target: Pc) {
        self.jalr.push(target);
    }

    /// The `i`-th conditional outcome, or `None` beyond the feed (a
    /// fetch run ahead of the recorded stream — predictions there fall
    /// back to not-taken and may deterministically mispredict).
    pub(crate) fn cond(&self, i: u64) -> Option<bool> {
        (i < self.n_cond).then(|| self.cond_bits[(i / 64) as usize] >> (i % 64) & 1 == 1)
    }

    /// The `i`-th `jalr` target, or `None` beyond the feed.
    pub(crate) fn jalr(&self, i: u64) -> Option<Pc> {
        self.jalr.get(i as usize).copied()
    }

    /// Conditional outcomes recorded.
    pub fn cond_len(&self) -> u64 {
        self.n_cond
    }

    /// Indirect targets recorded.
    pub fn jalr_len(&self) -> u64 {
        self.jalr.len() as u64
    }

    pub(crate) fn save(&self, w: &mut CkptWriter) {
        w.u64(self.n_cond);
        for &word in &self.cond_bits {
            w.u64(word);
        }
        w.u64(self.jalr.len() as u64);
        for &t in &self.jalr {
            w.pc(t);
        }
    }

    pub(crate) fn load(r: &mut CkptReader) -> Result<OracleFeed, CkptError> {
        let n_cond = r.u64()?;
        let words = usize::try_from(n_cond.div_ceil(64))
            .map_err(|_| CkptError::Corrupt(format!("oracle feed of {n_cond} outcomes")))?;
        let mut cond_bits = Vec::new();
        for _ in 0..words {
            cond_bits.push(r.u64()?);
        }
        let nj = r.seq_len(8)?;
        let mut jalr = Vec::with_capacity(nj);
        for _ in 0..nj {
            jalr.push(r.pc()?);
        }
        Ok(OracleFeed { cond_bits, n_cond, jalr })
    }
}

/// The interpreter state of the feed replay: a flat register file
/// (zeroed, as in a pristine pipeline) over a clone of simulated
/// memory — stores during the replay never touch the real image.
struct FeedState {
    regs: [u64; NUM_ARCH_REGS],
    memory: MainMemory,
}

impl ArchState for FeedState {
    fn reg(&self, a: mssr_isa::ArchReg) -> u64 {
        self.regs[a.index()]
    }

    fn set_reg(&mut self, a: mssr_isa::ArchReg, v: u64) {
        self.regs[a.index()] = v;
    }

    fn mem_read(&mut self, addr: u64) -> u64 {
        self.memory.read_u64(addr)
    }

    fn mem_write(&mut self, addr: u64, v: u64) {
        self.memory.write_u64(addr, v)
    }

    fn wrap(&self, addr: u64) -> u64 {
        self.memory.wrap(addr)
    }
}

/// The perfect conditional predictor: reads the feed at a cursor that
/// advances per prediction. The cursor rides `PredMeta::ghr_before`, so
/// the pipeline's existing history recovery realigns it on squashes.
#[derive(Clone, Debug, Default)]
pub(crate) struct OracleCond {
    cursor: u64,
}

/// The adversarial conditional predictor: the oracle's exact
/// complement. Every committed conditional branch mispredicts, which
/// maximizes the squash stream reuse engines feed on.
#[derive(Clone, Debug, Default)]
pub(crate) struct AlwaysWrongCond {
    cursor: u64,
}

fn feed_cond(feed: Option<&OracleFeed>, i: u64) -> bool {
    feed.and_then(|f| f.cond(i)).unwrap_or(false)
}

macro_rules! cursor_cond {
    ($ty:ty, $invert:expr) => {
        impl CondPredictor for $ty {
            fn predict(&mut self, _pc: Pc, feed: Option<&OracleFeed>) -> (bool, PredMeta) {
                let meta = PredMeta { ghr_before: self.cursor };
                let pred = feed_cond(feed, self.cursor) ^ $invert;
                self.cursor += 1;
                (pred, meta)
            }

            fn recover(&mut self, meta: PredMeta, _actual_taken: bool) {
                // The branch itself survives a squash it caused: its
                // feed slot stays consumed.
                self.cursor = meta.ghr_before + 1;
            }

            fn train(&mut self, _pc: Pc, _taken: bool, _meta: PredMeta) {}

            fn history(&self) -> u64 {
                self.cursor
            }

            fn restore_history(&mut self, cursor: u64) {
                self.cursor = cursor;
            }

            fn occupancy(&self) -> (usize, usize) {
                (0, 0)
            }

            fn save_state(&self, w: &mut CkptWriter) {
                w.u64(self.cursor);
            }

            fn load_state(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
                self.cursor = r.u64()?;
                Ok(())
            }
        }
    };
}

cursor_cond!(OracleCond, false);
cursor_cond!(AlwaysWrongCond, true);

/// The perfect indirect predictor: a cursor over the feed's `jalr`
/// targets. The cursor rides the RAS top-of-stack token (the facade
/// makes `ras_sp()` return it and `ras_push`/`ras_pop` no-ops), so the
/// pipeline's per-instruction RAS snapshot/restore realigns it on
/// squashes with no new recovery state.
#[derive(Clone, Debug, Default)]
pub(crate) struct OracleIndirect {
    cursor: u64,
}

impl OracleIndirect {
    pub(crate) fn cursor(&self) -> u64 {
        self.cursor
    }

    pub(crate) fn set_cursor(&mut self, cursor: u64) {
        self.cursor = cursor;
    }
}

impl IndirectPredictor for OracleIndirect {
    fn predict(&mut self, _pc: Pc, feed: Option<&OracleFeed>) -> Option<Pc> {
        let t = feed.and_then(|f| f.jalr(self.cursor));
        self.cursor += 1;
        t
    }

    fn update(&mut self, _pc: Pc, _target: Pc) {}

    fn digest(&self) -> u64 {
        self.cursor
    }

    fn save_state(&self, w: &mut CkptWriter) {
        w.u64(self.cursor);
    }

    fn load_state(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.cursor = r.u64()?;
        Ok(())
    }
}
