//! Structured pipeline-event tracing.
//!
//! The simulator can emit a compact, typed event for every architectural
//! milestone an instruction passes — fetch, rename, issue, writeback,
//! commit — plus the two events squash reuse revolves around: pipeline
//! squashes and reuse grants. Events flow into a [`TraceSink`]; two sinks
//! are provided, a JSON-lines writer ([`JsonLinesSink`] /
//! [`BufferSink`]) and a bounded in-memory ring ([`RingSink`]) for
//! post-mortem inspection in tests and debuggers.
//!
//! Tracing is **zero-cost when off**: the pipeline consults
//! [`Tracer::on`] (an `Option` discriminant test) before constructing an
//! event, so an untraced simulation does no formatting, no allocation,
//! and no virtual dispatch. Because every event is built from
//! deterministic simulation state, a trace is byte-identical across
//! runs, `--jobs` values, and platforms — the same property the
//! statistics JSON has, extended to per-instruction granularity.
//!
//! The JSON-lines schema (one object per line, stable key order) is
//! documented in `EXPERIMENTS.md`; `DESIGN.md` describes how the trace
//! subsystem and the `check` invariant checker fit into the pipeline.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

use mssr_isa::Pc;

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::sample::Sample;
use crate::types::{FlushKind, FuClass, SeqNum};

/// What a [`TraceEvent::Ckpt`] record marks: a snapshot being taken, a
/// restore from one, or a functional fast-forward handing off to the
/// detailed pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CkptAction {
    /// A checkpoint snapshot was written.
    Save,
    /// Simulation state was restored from a checkpoint.
    Restore,
    /// Functional fast-forward completed and detailed simulation begins.
    Ffwd,
}

impl CkptAction {
    /// The action's stable name, used in the JSON schema.
    pub fn name(self) -> &'static str {
        match self {
            CkptAction::Save => "save",
            CkptAction::Restore => "restore",
            CkptAction::Ffwd => "ffwd",
        }
    }
}

/// One structured pipeline event.
///
/// Every variant carries the cycle it occurred in; instruction-scoped
/// events carry the global sequence number, which links the fetch →
/// rename → issue → writeback → commit lifecycle of one dynamic
/// instruction across lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The frontend emitted a prediction block.
    Fetch {
        /// Cycle of the fetch.
        cycle: u64,
        /// PC of the first instruction in the block.
        start: Pc,
        /// PC of the last instruction in the block (inclusive).
        end: Pc,
        /// Number of instructions predicted into the block.
        insts: u32,
    },
    /// An instruction was renamed and dispatched into the ROB.
    Rename {
        /// Cycle of the rename.
        cycle: u64,
        /// The instruction's sequence number.
        seq: SeqNum,
        /// Its PC.
        pc: Pc,
    },
    /// An instruction was selected for execution.
    Issue {
        /// Cycle of the issue.
        cycle: u64,
        /// The instruction's sequence number.
        seq: SeqNum,
        /// The functional-unit class it issued to.
        fu: FuClass,
    },
    /// An instruction's result wrote back (it became complete).
    Writeback {
        /// Cycle of the writeback.
        cycle: u64,
        /// The instruction's sequence number.
        seq: SeqNum,
        /// The produced value (0 for instructions without a destination).
        value: u64,
    },
    /// An instruction retired.
    Commit {
        /// Cycle of the commit.
        cycle: u64,
        /// The instruction's sequence number.
        seq: SeqNum,
        /// Its PC.
        pc: Pc,
    },
    /// A pipeline flush squashed the ROB tail.
    Squash {
        /// Cycle of the squash.
        cycle: u64,
        /// Why the pipeline flushed.
        kind: FlushKind,
        /// Oldest squashed sequence number.
        first: SeqNum,
        /// Number of ROB entries squashed.
        count: u64,
        /// Where fetch resumes.
        redirect: Pc,
    },
    /// A reuse engine granted an instruction at rename (its execution is
    /// skipped; the squashed result is recycled).
    ReuseGrant {
        /// Cycle of the grant.
        cycle: u64,
        /// The granted instruction's sequence number.
        seq: SeqNum,
        /// Its PC.
        pc: Pc,
        /// Whether a verification re-execution gates its commit
        /// (reused loads under the load-verification policy, §3.8.3).
        verify: bool,
    },
    /// The interval sampler took a snapshot: one interval's worth of
    /// statistics deltas (see [`crate::sample`]).
    Sample(Sample),
    /// A checkpoint boundary: a snapshot, a restore, or the handoff
    /// from functional fast-forward to detailed simulation.
    Ckpt {
        /// Cycle of the checkpoint action.
        cycle: u64,
        /// What happened at the boundary.
        action: CkptAction,
        /// Committed instructions at the boundary (for `Ffwd`, the
        /// number of functionally fast-forwarded instructions).
        insts: u64,
    },
}

/// The event kinds, for counting and naming.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A [`TraceEvent::Fetch`].
    Fetch,
    /// A [`TraceEvent::Rename`].
    Rename,
    /// A [`TraceEvent::Issue`].
    Issue,
    /// A [`TraceEvent::Writeback`].
    Writeback,
    /// A [`TraceEvent::Commit`].
    Commit,
    /// A [`TraceEvent::Squash`].
    Squash,
    /// A [`TraceEvent::ReuseGrant`].
    ReuseGrant,
    /// A [`TraceEvent::Sample`].
    Sample,
    /// A [`TraceEvent::Ckpt`].
    Ckpt,
}

impl TraceKind {
    /// Number of event kinds (size of per-kind counter arrays).
    pub const COUNT: usize = 9;

    /// All kinds, in counter-index order.
    pub const ALL: [TraceKind; TraceKind::COUNT] = [
        TraceKind::Fetch,
        TraceKind::Rename,
        TraceKind::Issue,
        TraceKind::Writeback,
        TraceKind::Commit,
        TraceKind::Squash,
        TraceKind::ReuseGrant,
        TraceKind::Sample,
        TraceKind::Ckpt,
    ];

    /// The kind's stable name, used as the `"ev"` field of the JSON
    /// schema and as the `trace_*` suffix of the statistics counters.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Fetch => "fetch",
            TraceKind::Rename => "rename",
            TraceKind::Issue => "issue",
            TraceKind::Writeback => "writeback",
            TraceKind::Commit => "commit",
            TraceKind::Squash => "squash",
            TraceKind::ReuseGrant => "reuse_grant",
            TraceKind::Sample => "sample",
            TraceKind::Ckpt => "ckpt",
        }
    }

    /// The kind's index into per-kind counter arrays.
    pub fn index(self) -> usize {
        match self {
            TraceKind::Fetch => 0,
            TraceKind::Rename => 1,
            TraceKind::Issue => 2,
            TraceKind::Writeback => 3,
            TraceKind::Commit => 4,
            TraceKind::Squash => 5,
            TraceKind::ReuseGrant => 6,
            TraceKind::Sample => 7,
            TraceKind::Ckpt => 8,
        }
    }

    /// The kind's bit in a [`Tracer`] event mask.
    pub fn bit(self) -> u64 {
        1 << self.index()
    }
}

fn fu_name(fu: FuClass) -> &'static str {
    match fu {
        FuClass::Alu => "alu",
        FuClass::Bru => "bru",
        FuClass::Lsu => "lsu",
    }
}

fn flush_name(kind: FlushKind) -> &'static str {
    match kind {
        FlushKind::BranchMispredict => "branch",
        FlushKind::MemoryOrder => "mem_order",
        FlushKind::ReuseVerification => "reuse_verify",
    }
}

impl TraceEvent {
    /// The event's kind.
    pub fn kind(&self) -> TraceKind {
        match self {
            TraceEvent::Fetch { .. } => TraceKind::Fetch,
            TraceEvent::Rename { .. } => TraceKind::Rename,
            TraceEvent::Issue { .. } => TraceKind::Issue,
            TraceEvent::Writeback { .. } => TraceKind::Writeback,
            TraceEvent::Commit { .. } => TraceKind::Commit,
            TraceEvent::Squash { .. } => TraceKind::Squash,
            TraceEvent::ReuseGrant { .. } => TraceKind::ReuseGrant,
            TraceEvent::Sample(_) => TraceKind::Sample,
            TraceEvent::Ckpt { .. } => TraceKind::Ckpt,
        }
    }

    /// The cycle the event occurred in.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Fetch { cycle, .. }
            | TraceEvent::Rename { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::Writeback { cycle, .. }
            | TraceEvent::Commit { cycle, .. }
            | TraceEvent::Squash { cycle, .. }
            | TraceEvent::ReuseGrant { cycle, .. }
            | TraceEvent::Ckpt { cycle, .. } => cycle,
            TraceEvent::Sample(s) => s.cycle,
        }
    }

    /// The event as one JSON object (no trailing newline, stable key
    /// order, integers only — byte-identical across runs and platforms).
    pub fn to_json(&self) -> String {
        match *self {
            TraceEvent::Fetch { cycle, start, end, insts } => format!(
                "{{\"ev\":\"fetch\",\"cycle\":{cycle},\"start\":{},\"end\":{},\"insts\":{insts}}}",
                start.addr(),
                end.addr()
            ),
            TraceEvent::Rename { cycle, seq, pc } => format!(
                "{{\"ev\":\"rename\",\"cycle\":{cycle},\"seq\":{},\"pc\":{}}}",
                seq.value(),
                pc.addr()
            ),
            TraceEvent::Issue { cycle, seq, fu } => format!(
                "{{\"ev\":\"issue\",\"cycle\":{cycle},\"seq\":{},\"fu\":\"{}\"}}",
                seq.value(),
                fu_name(fu)
            ),
            TraceEvent::Writeback { cycle, seq, value } => format!(
                "{{\"ev\":\"writeback\",\"cycle\":{cycle},\"seq\":{},\"value\":{value}}}",
                seq.value()
            ),
            TraceEvent::Commit { cycle, seq, pc } => format!(
                "{{\"ev\":\"commit\",\"cycle\":{cycle},\"seq\":{},\"pc\":{}}}",
                seq.value(),
                pc.addr()
            ),
            TraceEvent::Squash { cycle, kind, first, count, redirect } => format!(
                "{{\"ev\":\"squash\",\"cycle\":{cycle},\"kind\":\"{}\",\"first\":{},\"count\":{count},\"redirect\":{}}}",
                flush_name(kind),
                first.value(),
                redirect.addr()
            ),
            TraceEvent::ReuseGrant { cycle, seq, pc, verify } => format!(
                "{{\"ev\":\"reuse_grant\",\"cycle\":{cycle},\"seq\":{},\"pc\":{},\"verify\":{verify}}}",
                seq.value(),
                pc.addr()
            ),
            TraceEvent::Sample(s) => s.to_json(),
            TraceEvent::Ckpt { cycle, action, insts } => format!(
                "{{\"ev\":\"ckpt\",\"cycle\":{cycle},\"action\":\"{}\",\"insts\":{insts}}}",
                action.name()
            ),
        }
    }
}

/// A consumer of trace events.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, ev: &TraceEvent);

    /// Flushes any buffered output (called when the sink is detached).
    fn flush(&mut self) {}
}

/// A sink that writes one JSON object per line to any [`Write`] target.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    w: W,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> JsonLinesSink<W> {
        JsonLinesSink { w }
    }

    /// Unwraps the writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        // Trace output is best-effort diagnostics; a failed write must
        // not abort a deterministic simulation.
        let _ = writeln!(self.w, "{}", ev.to_json());
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// A JSON-lines sink backed by a shared string buffer.
///
/// The simulator owns the sink (`Box<dyn TraceSink>`), so a caller that
/// wants the trace back after the run keeps the [`BufferSink::handle`]
/// and reads it once the simulation finishes. This is how the experiment
/// harness collects per-cell traces from worker threads.
#[derive(Debug, Default)]
pub struct BufferSink {
    buf: Arc<Mutex<String>>,
}

impl BufferSink {
    /// An empty buffer sink.
    pub fn new() -> BufferSink {
        BufferSink::default()
    }

    /// A handle to the shared buffer (one JSON object per line).
    pub fn handle(&self) -> Arc<Mutex<String>> {
        Arc::clone(&self.buf)
    }
}

impl TraceSink for BufferSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut b = self.buf.lock().expect("trace buffer poisoned");
        b.push_str(&ev.to_json());
        b.push('\n');
    }
}

/// A bounded in-memory ring of the most recent events.
///
/// Useful as a flight recorder: cheap enough to leave attached, and on a
/// failure the last `capacity` events show what the pipeline was doing.
#[derive(Debug)]
pub struct RingSink {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink { ring: VecDeque::new(), capacity: capacity.max(1), dropped: 0 }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of events evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(*ev);
    }
}

/// The pipeline's tracing front end: an optional sink plus per-kind
/// event counters (surfaced through `EngineStats::extra` as `trace_*`
/// when tracing is active). A per-kind bitmask filters which events
/// reach the sink — the `--sample N` harness flag, for instance, attaches
/// a sink masked to [`TraceKind::Sample`] only, so sampling does not drag
/// the full per-instruction event stream along with it.
pub(crate) struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
    counts: [u64; TraceKind::COUNT],
    mask: u64,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer { sink: None, counts: [0; TraceKind::COUNT], mask: !0 }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("on", &self.sink.is_some())
            .field("counts", &self.counts)
            .finish()
    }
}

impl Tracer {
    /// Whether a sink is attached. Call sites guard event construction
    /// on this so untraced runs pay only the discriminant test.
    #[inline]
    pub fn on(&self) -> bool {
        self.sink.is_some()
    }

    /// Whether any event was ever recorded (counters are kept after the
    /// sink is detached, so end-of-run statistics still report them).
    pub fn active(&self) -> bool {
        self.sink.is_some() || self.counts.iter().any(|&c| c > 0)
    }

    /// Records one event (no-op without a sink or when the event's kind
    /// is masked off).
    pub fn emit(&mut self, ev: TraceEvent) {
        if let Some(s) = &mut self.sink {
            if self.mask & ev.kind().bit() == 0 {
                return;
            }
            self.counts[ev.kind().index()] += 1;
            s.record(&ev);
        }
    }

    /// Attaches a sink, replacing (and flushing) any previous one.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        if let Some(mut old) = self.sink.replace(sink) {
            old.flush();
        }
    }

    /// Detaches and flushes the sink, if any.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut s = self.sink.take()?;
        s.flush();
        Some(s)
    }

    /// Restricts the sink to the given kinds (a bitwise OR of
    /// [`TraceKind::bit`] values). The default mask passes everything.
    pub fn set_mask(&mut self, mask: u64) {
        self.mask = mask;
    }

    /// Event count for one kind.
    pub fn count(&self, kind: TraceKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Zeroes every per-kind counter. Used when re-arming tracing after
    /// a checkpoint restore into a differently-configured run, where the
    /// restored counters describe the donor's filtering, not ours.
    pub fn reset_counts(&mut self) {
        self.counts = [0; TraceKind::COUNT];
    }

    /// Serializes the counters and mask. The sink is deliberately not
    /// serialized: sinks hold live I/O handles, and a restored run
    /// attaches its own (or none).
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.mask);
        w.u64(self.counts.len() as u64);
        for &c in &self.counts {
            w.u64(c);
        }
    }

    /// Restores the counters and mask; leaves the current sink as is.
    pub fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.mask = r.u64()?;
        let n = r.seq_len(8)?;
        if n != TraceKind::COUNT {
            return Err(CkptError::Corrupt(format!(
                "{n} trace counters in checkpoint, expected {}",
                TraceKind::COUNT
            )));
        }
        for c in &mut self.counts {
            *c = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Fetch { cycle: 1, start: Pc::new(0x1000), end: Pc::new(0x101c), insts: 8 },
            TraceEvent::Rename { cycle: 5, seq: SeqNum::new(1), pc: Pc::new(0x1000) },
            TraceEvent::Issue { cycle: 6, seq: SeqNum::new(1), fu: FuClass::Alu },
            TraceEvent::Writeback { cycle: 7, seq: SeqNum::new(1), value: 42 },
            TraceEvent::Commit { cycle: 8, seq: SeqNum::new(1), pc: Pc::new(0x1000) },
            TraceEvent::Squash {
                cycle: 9,
                kind: FlushKind::BranchMispredict,
                first: SeqNum::new(2),
                count: 3,
                redirect: Pc::new(0x1010),
            },
            TraceEvent::ReuseGrant {
                cycle: 10,
                seq: SeqNum::new(5),
                pc: Pc::new(0x1010),
                verify: true,
            },
            TraceEvent::Sample(Sample {
                cycle: 100,
                insts: 80,
                mispredicts: 1,
                squashed: 3,
                grants: 2,
                l1_misses: 4,
                squash_slots: 16,
            }),
            TraceEvent::Ckpt { cycle: 120, action: CkptAction::Restore, insts: 75 },
        ]
    }

    #[test]
    fn json_schema_is_stable() {
        let evs = sample();
        assert_eq!(
            evs[0].to_json(),
            "{\"ev\":\"fetch\",\"cycle\":1,\"start\":4096,\"end\":4124,\"insts\":8}"
        );
        assert_eq!(evs[1].to_json(), "{\"ev\":\"rename\",\"cycle\":5,\"seq\":1,\"pc\":4096}");
        assert_eq!(evs[2].to_json(), "{\"ev\":\"issue\",\"cycle\":6,\"seq\":1,\"fu\":\"alu\"}");
        assert_eq!(evs[3].to_json(), "{\"ev\":\"writeback\",\"cycle\":7,\"seq\":1,\"value\":42}");
        assert_eq!(evs[4].to_json(), "{\"ev\":\"commit\",\"cycle\":8,\"seq\":1,\"pc\":4096}");
        assert_eq!(
            evs[5].to_json(),
            "{\"ev\":\"squash\",\"cycle\":9,\"kind\":\"branch\",\"first\":2,\"count\":3,\"redirect\":4112}"
        );
        assert_eq!(
            evs[6].to_json(),
            "{\"ev\":\"reuse_grant\",\"cycle\":10,\"seq\":5,\"pc\":4112,\"verify\":true}"
        );
        assert_eq!(
            evs[7].to_json(),
            "{\"ev\":\"sample\",\"cycle\":100,\"insts\":80,\"mispredicts\":1,\"squashed\":3,\
             \"grants\":2,\"l1_misses\":4,\"squash_slots\":16}"
        );
        assert_eq!(
            evs[8].to_json(),
            "{\"ev\":\"ckpt\",\"cycle\":120,\"action\":\"restore\",\"insts\":75}"
        );
    }

    #[test]
    fn kinds_round_trip_names_and_indices() {
        for (i, k) in TraceKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        let evs = sample();
        let names: Vec<&str> = evs.iter().map(|e| e.kind().name()).collect();
        assert_eq!(
            names,
            [
                "fetch",
                "rename",
                "issue",
                "writeback",
                "commit",
                "squash",
                "reuse_grant",
                "sample",
                "ckpt"
            ]
        );
        assert_eq!(evs[3].cycle(), 7);
        assert_eq!(evs[7].cycle(), 100);
        assert_eq!(evs[8].cycle(), 120);
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let mut sink = JsonLinesSink::new(Vec::new());
        for ev in sample() {
            sink.record(&ev);
        }
        let out = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(out.lines().count(), 9);
        assert!(out.ends_with('\n'));
        assert!(out.lines().all(|l| l.starts_with("{\"ev\":\"")));
    }

    #[test]
    fn buffer_sink_shares_contents_through_handle() {
        let sink = BufferSink::new();
        let handle = sink.handle();
        let mut boxed: Box<dyn TraceSink> = Box::new(sink);
        boxed.record(&sample()[1]);
        boxed.record(&sample()[2]);
        let got = handle.lock().unwrap().clone();
        assert_eq!(got.lines().count(), 2);
        assert!(got.starts_with("{\"ev\":\"rename\""));
    }

    #[test]
    fn ring_sink_keeps_the_most_recent_events() {
        let mut ring = RingSink::new(3);
        for ev in sample() {
            ring.record(&ev);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 6);
        let kinds: Vec<TraceKind> = ring.events().map(|e| e.kind()).collect();
        assert_eq!(kinds, [TraceKind::ReuseGrant, TraceKind::Sample, TraceKind::Ckpt]);
        assert!(!ring.is_empty());
    }

    #[test]
    fn tracer_counts_only_while_a_sink_is_attached() {
        let mut t = Tracer::default();
        assert!(!t.on());
        assert!(!t.active());
        t.emit(sample()[0]); // dropped: no sink
        assert_eq!(t.count(TraceKind::Fetch), 0);
        t.set_sink(Box::new(RingSink::new(8)));
        assert!(t.on());
        t.emit(sample()[0]);
        t.emit(sample()[4]);
        assert_eq!(t.count(TraceKind::Fetch), 1);
        assert_eq!(t.count(TraceKind::Commit), 1);
        let _ = t.take_sink().expect("sink attached");
        assert!(!t.on());
        assert!(t.active(), "counters survive sink detachment");
    }

    #[test]
    fn mask_filters_kinds_before_the_sink() {
        let mut t = Tracer::default();
        t.set_sink(Box::new(RingSink::new(16)));
        t.set_mask(TraceKind::Sample.bit() | TraceKind::Squash.bit());
        for ev in sample() {
            t.emit(ev);
        }
        assert_eq!(t.count(TraceKind::Sample), 1);
        assert_eq!(t.count(TraceKind::Squash), 1);
        assert_eq!(t.count(TraceKind::Fetch), 0, "masked kinds are neither counted nor recorded");
        t.set_mask(!0);
        t.emit(sample()[0]);
        assert_eq!(t.count(TraceKind::Fetch), 1);
    }

    #[test]
    fn tracer_state_round_trips_through_checkpoint() {
        let mut t = Tracer::default();
        t.set_sink(Box::new(RingSink::new(16)));
        t.set_mask(TraceKind::Commit.bit() | TraceKind::Ckpt.bit());
        for ev in sample() {
            t.emit(ev);
        }
        let mut w = CkptWriter::new();
        t.ckpt_save(&mut w);
        let bytes = w.finish();

        let mut back = Tracer::default();
        let mut r = CkptReader::new(&bytes);
        back.ckpt_load(&mut r).unwrap();
        r.done().unwrap();
        assert_eq!(back.count(TraceKind::Commit), 1);
        assert_eq!(back.count(TraceKind::Ckpt), 1);
        assert_eq!(back.count(TraceKind::Fetch), 0);
        assert!(!back.on(), "sinks are not serialized");
        // The restored mask still filters: a fetch event is dropped.
        back.set_sink(Box::new(RingSink::new(4)));
        back.emit(sample()[0]);
        assert_eq!(back.count(TraceKind::Fetch), 0);
    }

    #[test]
    fn reset_counts_clears_every_kind_but_keeps_the_sink_and_mask() {
        let mut t = Tracer::default();
        t.set_sink(Box::new(RingSink::new(16)));
        t.set_mask(TraceKind::Sample.bit());
        for ev in sample() {
            t.emit(ev);
        }
        assert_eq!(t.count(TraceKind::Sample), 1);
        t.reset_counts();
        for k in TraceKind::ALL {
            assert_eq!(t.count(k), 0, "{k:?} must reset");
        }
        assert!(t.on(), "the sink survives a counter reset");
        // The mask survives too: a masked fetch still goes uncounted, a
        // sample event counts again from zero.
        t.emit(sample()[0]);
        assert_eq!(t.count(TraceKind::Fetch), 0);
        assert_eq!(t.count(TraceKind::Sample), 0);
        t.emit(TraceEvent::Sample(Sample {
            cycle: 8,
            insts: 1,
            mispredicts: 0,
            squashed: 0,
            grants: 0,
            l1_misses: 0,
            squash_slots: 0,
        }));
        assert_eq!(t.count(TraceKind::Sample), 1);
    }
}
