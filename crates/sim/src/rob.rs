//! The reorder buffer.

use std::collections::VecDeque;

use mssr_isa::{ArchReg, Inst, Pc};

use crate::bpred::PredMeta;
use crate::types::{PhysReg, Rgid, SeqNum};

/// Destination-register bookkeeping for a renamed instruction.
#[derive(Clone, Copy, Debug)]
pub struct DstInfo {
    /// Architectural destination.
    pub arch: ArchReg,
    /// Physical register this instruction writes (or reuses).
    pub new_preg: PhysReg,
    /// Previous mapping of `arch`, freed when this instruction commits.
    pub prev_preg: PhysReg,
    /// RGID tagged on the new mapping.
    pub new_rgid: Rgid,
    /// RGID of the previous mapping, restored on rollback.
    pub prev_rgid: Rgid,
}

/// Resolution outcome of a control instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether the branch was actually taken.
    pub taken: bool,
    /// The actual next PC.
    pub next: Pc,
}

/// Per-branch pipeline state.
#[derive(Clone, Copy, Debug)]
pub struct BranchState {
    /// The next PC the frontend followed after this instruction.
    pub pred_next: Pc,
    /// Whether the frontend predicted taken.
    pub pred_taken: bool,
    /// Predictor snapshot for training/recovery.
    pub meta: PredMeta,
    /// Filled at execution.
    pub resolved: Option<BranchOutcome>,
}

/// One reorder-buffer entry.
#[derive(Clone, Debug)]
pub struct RobEntry {
    /// Global dynamic sequence number.
    pub seq: SeqNum,
    /// Instruction address.
    pub pc: Pc,
    /// The decoded instruction.
    pub inst: Inst,
    /// Destination bookkeeping, if the instruction writes a register.
    pub dst: Option<DstInfo>,
    /// Source physical registers (`None` for absent or `x0` operands).
    pub src_pregs: [Option<PhysReg>; 2],
    /// Source RGIDs at rename time (mirrors the paper's ROB RGID fields,
    /// used to populate the Squash Log on a misprediction).
    pub src_rgids: [Option<Rgid>; 2],
    /// Whether the result (if any) has been produced.
    pub completed: bool,
    /// Whether this instruction's result was granted by a reuse engine.
    pub reused: bool,
    /// A reused load that has not yet passed its verification
    /// re-execution; blocks commit.
    pub verify_pending: bool,
    /// The instruction is a load requeued behind an older same-block
    /// store whose data is not yet known
    /// ([`Forward::Pending`](crate::lsq::Forward)); cleared when the load
    /// eventually executes. Read by the CPI-stack accounting to blame
    /// stalled commit slots on store-forwarding rather than the memory
    /// system at large.
    pub fwd_stalled: bool,
    /// Result value computed at issue, applied to the PRF at writeback.
    pub pending_value: Option<u64>,
    /// Branch state for control instructions.
    pub branch: Option<BranchState>,
    /// Effective address, once computed, for loads and stores.
    pub mem_addr: Option<u64>,
    /// Speculative global history before this instruction's prediction
    /// (used to restore the GHR when a flush squashes from here).
    pub ghr_before: u64,
    /// Return-address-stack top-of-stack counter before this
    /// instruction's prediction (restored on squash).
    pub ras_sp_before: u64,
}

/// The reorder buffer: an age-ordered queue of in-flight instructions.
#[derive(Debug)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
}

impl Rob {
    /// Creates an empty ROB with the given capacity.
    pub fn new(capacity: usize) -> Rob {
        Rob { entries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Whether another instruction can be dispatched.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Number of in-flight instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a dispatched instruction.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full or `e.seq` is not strictly older-to-newer.
    pub fn push(&mut self, e: RobEntry) {
        assert!(self.has_space(), "ROB overflow");
        if let Some(tail) = self.entries.back() {
            assert!(e.seq > tail.seq, "ROB entries must be pushed in age order");
        }
        self.entries.push_back(e);
    }

    /// The oldest entry, if any.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Pops the oldest entry (at commit).
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        self.entries.pop_front()
    }

    /// Looks up an entry by sequence number (binary search; entries are
    /// age-ordered and seq numbers are never reused).
    pub fn get(&self, seq: SeqNum) -> Option<&RobEntry> {
        let idx = self.entries.binary_search_by_key(&seq, |e| e.seq).ok()?;
        self.entries.get(idx)
    }

    /// Mutable lookup by sequence number.
    pub fn get_mut(&mut self, seq: SeqNum) -> Option<&mut RobEntry> {
        let idx = self.entries.binary_search_by_key(&seq, |e| e.seq).ok()?;
        self.entries.get_mut(idx)
    }

    /// Removes all entries with `seq >= first` into `out` (cleared
    /// first), youngest first — the natural order of a tail walk, which
    /// callers use to unwind the RAT before reversing for engine
    /// consumption. Taking the buffer by reference keeps the squash path
    /// allocation-free in steady state.
    pub fn squash_from_into(&mut self, first: SeqNum, out: &mut Vec<RobEntry>) {
        out.clear();
        while let Some(tail) = self.entries.back() {
            if tail.seq >= first {
                out.push(self.entries.pop_back().expect("back exists"));
            } else {
                break;
            }
        }
    }

    /// Allocating convenience wrapper over [`Rob::squash_from_into`]
    /// (tests and cold paths only).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn squash_from(&mut self, first: SeqNum) -> Vec<RobEntry> {
        let mut out = Vec::new();
        self.squash_from_into(first, &mut out);
        out
    }

    /// Iterates entries oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Iterates entries mutably, oldest first.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        self.entries.iter_mut()
    }

    /// ROB capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_isa::Opcode;

    fn entry(seq: u64) -> RobEntry {
        RobEntry {
            seq: SeqNum::new(seq),
            pc: Pc::new(0x1000 + seq * 4),
            inst: Inst::simple(Opcode::Nop),
            dst: None,
            src_pregs: [None, None],
            src_rgids: [None, None],
            completed: false,
            reused: false,
            verify_pending: false,
            fwd_stalled: false,
            pending_value: None,
            branch: None,
            mem_addr: None,
            ghr_before: 0,
            ras_sp_before: 0,
        }
    }

    #[test]
    fn push_pop_fifo_order() {
        let mut rob = Rob::new(4);
        rob.push(entry(1));
        rob.push(entry(2));
        rob.push(entry(3));
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.pop_head().unwrap().seq, SeqNum::new(1));
        assert_eq!(rob.head().unwrap().seq, SeqNum::new(2));
    }

    #[test]
    fn lookup_by_seq() {
        let mut rob = Rob::new(8);
        for s in [2, 5, 9] {
            rob.push(entry(s));
        }
        assert!(rob.get(SeqNum::new(5)).is_some());
        assert!(rob.get(SeqNum::new(4)).is_none());
        rob.get_mut(SeqNum::new(9)).unwrap().completed = true;
        assert!(rob.get(SeqNum::new(9)).unwrap().completed);
    }

    #[test]
    fn squash_removes_youngest_first() {
        let mut rob = Rob::new(8);
        for s in 1..=6 {
            rob.push(entry(s));
        }
        let squashed = rob.squash_from(SeqNum::new(4));
        let seqs: Vec<u64> = squashed.iter().map(|e| e.seq.value()).collect();
        assert_eq!(seqs, vec![6, 5, 4], "tail walk is youngest first");
        assert_eq!(rob.len(), 3);
        assert!(rob.get(SeqNum::new(4)).is_none());
        assert!(rob.get(SeqNum::new(3)).is_some());
    }

    #[test]
    fn squash_of_nothing_is_empty() {
        let mut rob = Rob::new(4);
        rob.push(entry(1));
        assert!(rob.squash_from(SeqNum::new(2)).is_empty());
        assert_eq!(rob.len(), 1);
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(1));
        rob.push(entry(2));
    }

    #[test]
    #[should_panic(expected = "age order")]
    fn out_of_order_push_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(5));
        rob.push(entry(3));
    }
}
