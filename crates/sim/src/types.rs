//! Core identifier types shared across the simulator.

use std::fmt;

/// A physical register identifier.
///
/// Physical registers hold speculative and architectural values; they are
/// allocated from the [`FreeList`](crate::rename::FreeList) at rename and
/// released when the renaming instruction is squashed or a younger writer
/// of the same architectural register commits. Reuse engines can place
/// additional *holds* on a physical register to keep its value alive after
/// a squash.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(u16);

impl PhysReg {
    /// Creates a physical register id.
    pub fn new(index: usize) -> PhysReg {
        PhysReg(index as u16)
    }

    /// The register's index into the physical register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A global dynamic-instruction sequence number.
///
/// Monotonically increasing across the whole simulation (never reused, even
/// after squashes), so comparing two `SeqNum`s orders any two dynamic
/// instructions by fetch age. Used for branch-age comparison when
/// classifying multi-stream reconvergence as software- or hardware-induced.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNum(u64);

impl SeqNum {
    /// The first sequence number.
    pub const ZERO: SeqNum = SeqNum(0);

    /// Creates a sequence number from a raw counter value.
    pub fn new(v: u64) -> SeqNum {
        SeqNum(v)
    }

    /// The raw counter value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The next sequence number.
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A Rename Mapping Generation ID (paper §3.1).
///
/// Every architectural-to-physical mapping installed in the RAT is tagged
/// with an RGID drawn from a per-architectural-register global counter.
/// Matching RGIDs between two execution states prove that the register was
/// not renamed in between, which is the paper's data-integrity test for
/// squash reuse.
///
/// RGIDs are `width`-bit values (6 bits in the paper's configuration) with
/// one reserved *null* encoding meaning "not reusable" — used for mappings
/// created while the generation counter is in an overflowed state.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rgid(u16);

impl Rgid {
    /// The reserved null RGID: a mapping that must never pass a reuse test.
    pub const NULL: Rgid = Rgid(u16::MAX);

    /// Creates an RGID from a counter value.
    pub fn new(v: u16) -> Rgid {
        Rgid(v)
    }

    /// The raw value (meaningless for [`Rgid::NULL`]).
    pub fn value(self) -> u16 {
        self.0
    }

    /// Whether this is the null RGID.
    pub fn is_null(self) -> bool {
        self == Rgid::NULL
    }

    /// RGID equality as used by the reuse test: null never matches,
    /// not even itself.
    pub fn matches(self, other: Rgid) -> bool {
        !self.is_null() && !other.is_null() && self == other
    }
}

impl fmt::Display for Rgid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            f.write_str("g-")
        } else {
            write!(f, "g{}", self.0)
        }
    }
}

impl fmt::Debug for Rgid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Which functional-unit class executes an instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FuClass {
    /// Integer ALU (arithmetic, logic, shifts, multiply, divide).
    Alu,
    /// Branch resolution unit (conditional branches, jumps).
    Bru,
    /// Load/store unit.
    Lsu,
}

/// The reason for a pipeline flush.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FlushKind {
    /// A conditional branch or indirect jump resolved against its prediction.
    BranchMispredict,
    /// A store found a younger, already-executed load to an overlapping
    /// address (store-to-load memory-order violation).
    MemoryOrder,
    /// A reused load's verification re-execution observed a different value
    /// (paper §3.8.3, NoSQ-style check).
    ReuseVerification,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_ordering_and_step() {
        let a = SeqNum::new(5);
        assert!(a < a.next());
        assert_eq!(a.next().value(), 6);
        assert_eq!(SeqNum::ZERO.value(), 0);
    }

    #[test]
    fn rgid_null_never_matches() {
        assert!(!Rgid::NULL.matches(Rgid::NULL));
        assert!(!Rgid::NULL.matches(Rgid::new(3)));
        assert!(!Rgid::new(3).matches(Rgid::NULL));
        assert!(Rgid::new(3).matches(Rgid::new(3)));
        assert!(!Rgid::new(3).matches(Rgid::new(4)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(PhysReg::new(7).to_string(), "p7");
        assert_eq!(SeqNum::new(9).to_string(), "#9");
        assert_eq!(Rgid::new(2).to_string(), "g2");
        assert_eq!(Rgid::NULL.to_string(), "g-");
    }

    #[test]
    fn physreg_index_roundtrip() {
        for i in [0usize, 1, 255, 1000] {
            assert_eq!(PhysReg::new(i).index(), i);
        }
    }
}
