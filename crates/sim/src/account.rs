//! Per-cycle CPI-stack accounting.
//!
//! Every simulated cycle the commit stage owns `commit_width` slots;
//! each slot either retires an instruction or goes idle for exactly one
//! reason. This module attributes every slot to one [`Category`], giving
//! the classic CPI-stack decomposition the paper's evaluation leans on
//! (where do the cycles go, and which of them does squash reuse win
//! back). The attribution is integer-only and derived from deterministic
//! pipeline state, so accounts are byte-identical across runs, `--jobs`
//! values, and platforms — like every other counter in `SimStats`.
//!
//! The account obeys a hard conservation law:
//!
//! ```text
//! sum(slots over all categories) == cycles × commit_width
//! ```
//!
//! enforced every debug-build cycle by the invariant checker
//! ([`Rule::CpiConservation`](crate::check::Rule)). A partial final
//! cycle — the commit that retires `halt` or hits an instruction bound —
//! is never counted (`Simulator::step` stops before incrementing the
//! cycle counter), which is what keeps the law exact rather than
//! approximate.
//!
//! Alongside the stack, two **credit** counters estimate what reuse won:
//! [`CycleAccount::credit_reuse_cycles`] accumulates the execution
//! latency each granted instruction skipped, and
//! [`CycleAccount::credit_recon_fetches`] counts grants delivered
//! through a reconvergence stream (RGID-forwarding engines). Credits are
//! clamped so they never exceed the squash-penalty slots actually
//! accrued: reuse cannot recover more cycles than mispredictions lost.

/// Why a commit slot was spent (or idle) this cycle.
///
/// Exactly one category applies per slot. The first, [`Category::Base`],
/// is the useful work; the rest decompose the lost slots by the reason
/// the commit head (or the whole ROB) was not ready.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// The slot retired an instruction.
    Base,
    /// The ROB was empty with no recent squash to blame: the frontend
    /// simply had not delivered (cold start, fetch off the program).
    FrontendEmpty,
    /// The ROB was empty while refilling after a branch-misprediction
    /// squash — the squash penalty squash reuse targets.
    SquashBranch,
    /// The commit head was an uncompleted load or store waiting on the
    /// memory system (or the ROB was refilling after a memory-order
    /// replay).
    MemStall,
    /// The commit head was a load requeued behind an older store that
    /// knows its address but not yet its data
    /// ([`Forward::Pending`](crate::lsq::Forward)).
    StoreForwardPending,
    /// The commit head was an uncompleted non-memory instruction:
    /// execution latency, issue-queue backpressure, or operand waits —
    /// backend pressure rather than any memory or control cause.
    BackendPressure,
    /// The commit head was a reused load whose verification re-execution
    /// had not finished, or the ROB was refilling after a
    /// reuse-verification flush.
    ReuseVerify,
}

impl Category {
    /// Number of categories (size of the slot array).
    pub const COUNT: usize = 7;

    /// All categories, in slot-index order.
    pub const ALL: [Category; Category::COUNT] = [
        Category::Base,
        Category::FrontendEmpty,
        Category::SquashBranch,
        Category::MemStall,
        Category::StoreForwardPending,
        Category::BackendPressure,
        Category::ReuseVerify,
    ];

    /// The category's stable name (the JSON key of the account object
    /// and the column header of `mssr-report`'s CPI-stack table).
    pub fn name(self) -> &'static str {
        match self {
            Category::Base => "base",
            Category::FrontendEmpty => "frontend_empty",
            Category::SquashBranch => "squash_branch",
            Category::MemStall => "mem_stall",
            Category::StoreForwardPending => "store_forward_pending",
            Category::BackendPressure => "backend_pressure",
            Category::ReuseVerify => "reuse_verify",
        }
    }

    /// The category's index into the slot array.
    pub fn index(self) -> usize {
        match self {
            Category::Base => 0,
            Category::FrontendEmpty => 1,
            Category::SquashBranch => 2,
            Category::MemStall => 3,
            Category::StoreForwardPending => 4,
            Category::BackendPressure => 5,
            Category::ReuseVerify => 6,
        }
    }
}

/// The cycle account of one simulation: commit-slot attribution plus
/// reuse-credit counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleAccount {
    /// Slots attributed per category, indexed by [`Category::index`].
    pub slots: [u64; Category::COUNT],
    /// Execution-latency cycles skipped by reuse grants (granted
    /// instructions × the latency each would have occupied a functional
    /// unit for), clamped to never exceed `slots[SquashBranch]`.
    pub credit_reuse_cycles: u64,
    /// Grants delivered through a reconvergence stream (the engine
    /// forwarded an RGID — MSSR/DCI; Register Integration grants carry
    /// none and are not counted here).
    pub credit_recon_fetches: u64,
}

impl CycleAccount {
    /// Attributes the `commit_width` slots of one cycle: `committed`
    /// slots retired instructions ([`Category::Base`]), the remainder is
    /// blamed on `idle`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `committed > commit_width` — the commit loop is
    /// bounded by the width, so overshoot is a pipeline bug.
    pub fn accrue(&mut self, committed: u64, idle: Category, commit_width: u64) {
        debug_assert!(committed <= commit_width, "committed {committed} > width {commit_width}");
        self.slots[Category::Base.index()] += committed;
        self.slots[idle.index()] += commit_width - committed.min(commit_width);
    }

    /// Credits `latency` skipped execution cycles to reuse, clamped so
    /// the running credit never exceeds the squash-penalty slots accrued
    /// so far (reuse cannot recover more than mispredictions lost).
    pub fn credit_reuse(&mut self, latency: u64) {
        let cap = self.slots[Category::SquashBranch.index()];
        self.credit_reuse_cycles = (self.credit_reuse_cycles + latency).min(cap);
    }

    /// Total slots attributed across all categories. The conservation
    /// law says this always equals `cycles × commit_width`.
    pub fn total_slots(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// Slots attributed to one category.
    pub fn get(&self, c: Category) -> u64 {
        self.slots[c.index()]
    }

    /// The account as a JSON object (stable key order, integers only —
    /// byte-identical across runs and platforms). Nested under
    /// `"account"` in [`SimStats::to_json`](crate::SimStats::to_json).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for c in Category::ALL {
            if out.len() > 1 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", c.name(), self.slots[c.index()]));
        }
        out.push_str(&format!(
            ",\"credit_reuse_cycles\":{},\"credit_recon_fetches\":{}}}",
            self.credit_reuse_cycles, self.credit_recon_fetches
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_round_trip_names_and_indices() {
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let names: Vec<&str> = Category::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "base",
                "frontend_empty",
                "squash_branch",
                "mem_stall",
                "store_forward_pending",
                "backend_pressure",
                "reuse_verify"
            ]
        );
    }

    #[test]
    fn accrue_conserves_slots_per_cycle() {
        let mut a = CycleAccount::default();
        a.accrue(8, Category::Base, 8); // full commit: no idle slots
        a.accrue(3, Category::MemStall, 8);
        a.accrue(0, Category::FrontendEmpty, 8);
        assert_eq!(a.total_slots(), 3 * 8);
        assert_eq!(a.get(Category::Base), 11);
        assert_eq!(a.get(Category::MemStall), 5);
        assert_eq!(a.get(Category::FrontendEmpty), 8);
    }

    #[test]
    fn credit_is_clamped_to_squash_slots() {
        let mut a = CycleAccount::default();
        a.credit_reuse(5);
        assert_eq!(a.credit_reuse_cycles, 0, "no squash penalty yet: nothing to recover");
        a.accrue(0, Category::SquashBranch, 8);
        a.credit_reuse(5);
        a.credit_reuse(5);
        assert_eq!(a.credit_reuse_cycles, 8, "clamped at the accrued penalty");
        a.accrue(0, Category::SquashBranch, 8);
        a.credit_reuse(3);
        assert_eq!(a.credit_reuse_cycles, 11, "cap grows with the penalty");
    }

    #[test]
    fn json_schema_is_stable() {
        let mut a = CycleAccount::default();
        a.accrue(2, Category::SquashBranch, 4);
        a.credit_reuse(1);
        a.credit_recon_fetches = 7;
        assert_eq!(
            a.to_json(),
            "{\"base\":2,\"frontend_empty\":0,\"squash_branch\":2,\"mem_stall\":0,\
             \"store_forward_pending\":0,\"backend_pressure\":0,\"reuse_verify\":0,\
             \"credit_reuse_cycles\":1,\"credit_recon_fetches\":7}"
        );
    }
}
