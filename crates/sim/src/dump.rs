//! Human-readable pipeline state dumps for debugging.

use std::fmt::Write as _;

use mssr_isa::ArchReg;

use crate::pipeline::Simulator;

impl Simulator {
    /// Renders a snapshot of the pipeline's architectural and
    /// microarchitectural state: cycle, fetch PC, ROB occupancy and head,
    /// free-register count, and the current RAT (non-identity mappings
    /// only). Intended for debugging stalls and engine behaviour; the
    /// format is human-oriented and not stable.
    ///
    /// # Example
    ///
    /// ```
    /// use mssr_isa::{regs::*, Assembler};
    /// use mssr_sim::{SimConfig, Simulator};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut a = Assembler::new();
    /// a.li(T0, 1);
    /// a.halt();
    /// let mut sim = Simulator::new(SimConfig::default(), a.assemble()?);
    /// sim.run_cycles(3);
    /// let dump = sim.dump_state();
    /// assert!(dump.contains("cycle"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn dump_state(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycle {}  engine {}  halted {}",
            self.cycle(),
            self.engine_name(),
            self.is_halted()
        );
        let (fetch_pc, frontend_len) = self.frontend_state();
        let _ = writeln!(
            out,
            "frontend: pc {}  in-flight {}",
            fetch_pc.map_or_else(|| "stalled".to_string(), |p| p.to_string()),
            frontend_len
        );
        let (rob_len, rob_cap, head) = self.rob_state();
        let _ = writeln!(
            out,
            "rob: {rob_len}/{rob_cap}  head {}",
            head.unwrap_or_else(|| "-".to_string())
        );
        let _ = writeln!(out, "free registers: {}", self.free_regs());
        let _ = writeln!(out, "rat (non-identity mappings):");
        for a in ArchReg::all() {
            let (p, g) = self.rat_entry(a);
            if p.index() != a.index() {
                let _ = writeln!(out, "  {a} -> {p} {g}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{SimConfig, Simulator};
    use mssr_isa::{regs::*, Assembler};

    #[test]
    fn dump_reflects_progress() {
        let mut a = Assembler::new();
        a.li(T0, 5);
        a.addi(T0, T0, 1);
        a.halt();
        let mut sim =
            Simulator::new(SimConfig::default().with_max_cycles(100), a.assemble().unwrap());
        let before = sim.dump_state();
        assert!(before.contains("cycle 0"));
        assert!(before.contains("pc 0x1000"));
        sim.run();
        let after = sim.dump_state();
        assert!(after.contains("halted true"));
        assert!(after.contains("x5 -> "), "t0 was renamed away from its identity mapping");
    }
}
