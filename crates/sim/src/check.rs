//! The pipeline invariant checker.
//!
//! Squash reuse rearranges register ownership in ways ordinary
//! out-of-order pipelines never do — holds transfer from engines to live
//! mappings, squashed values outlive their instructions, RGID
//! generations are forwarded across squashes — so the simulator carries
//! an always-on-in-debug checker that sweeps the full machine state
//! every cycle (`Simulator::step`) and after every squash. A release
//! build compiles the per-cycle sweep out; the sweep itself
//! ([`Simulator::invariant_violations`](crate::Simulator::invariant_violations))
//! stays available in release builds for tests and tools.
//!
//! The rules, and the bug class each one backstops:
//!
//! * [`Rule::FreeListIntegrity`] — the free list and the hold counts
//!   must agree: a register is queued exactly when its hold count is
//!   zero, with no duplicates.
//! * [`Rule::FreeListConservation`] — every hold is owned by someone:
//!   the total hold count equals the number of distinct live registers
//!   (RAT mappings plus in-flight ROB destinations and rollback
//!   targets) plus the engine's reported reservations
//!   ([`ReuseEngine::reserved_hold_count`](crate::ReuseEngine::reserved_hold_count)).
//!   An engine that retains a register and forgets it leaks PRF capacity
//!   forever; this rule catches the leak the cycle it happens.
//! * [`Rule::RobAgeOrder`] / [`Rule::LsqAgeOrder`] — the ROB and both
//!   LSQ halves hold strictly increasing sequence numbers (dispatch
//!   order is age order; `store_check` and forwarding both assume it).
//! * [`Rule::RgidMonotone`] — per architectural register, RGIDs granted
//!   by the allocator never exceed its counter, and the non-reused
//!   destinations in the ROB carry strictly increasing generations.
//!   Reused destinations are exempt from the ordering half: a grant
//!   *forwards* the squashed generation (paper §3.1), which may be older
//!   than generations allocated in between.
//! * [`Rule::StoreReuse`] — a store is never granted reuse (stores have
//!   externally visible effects; the pipeline never even queries them,
//!   and this rule keeps it that way).
//! * [`Rule::ReusedLoadVerify`] — `verify_pending` appears only on
//!   reused loads, and no instruction commits while it is set (the
//!   paper's §3.8.3 re-execution gate).
//! * [`Rule::LoadIssuedAddr`] — every issued, non-reused load-queue
//!   entry has a recorded address, so `store_check` can see *forwarded*
//!   loads, not just memory-sourced ones. (Reused entries may carry no
//!   address; the engine's verification policy covers them.)
//! * [`Rule::ForwardPending`] — no issued load coexists with an older
//!   same-block store that knows its address but not its data; such a
//!   load must wait ([`Forward::Pending`](crate::lsq::Forward)) rather
//!   than read stale memory.
//! * [`Rule::CpiConservation`] — the CPI-stack account attributes every
//!   commit slot exactly once: `sum(categories) == cycles × commit_width`,
//!   and the reuse credit never exceeds the squash-penalty slots it is
//!   clamped against. A miscounted slot means a cycle was double-blamed
//!   or silently dropped, which would make every CPI stack a lie.
//!
//! The rule bodies are pure functions over iterators, so tests can seed
//! violating states directly (a leaked register, a reordered queue, a
//! reused store) and prove each rule trips — see `tests/invariants.rs`.

use mssr_isa::{ArchReg, NUM_ARCH_REGS};

use crate::account::{Category, CycleAccount};
use crate::engine::ReuseEngine;
use crate::lsq::{LqEntry, SqEntry};
use crate::stage::MachineState;
#[cfg(debug_assertions)]
use crate::stage::Scratch;
use crate::types::{Rgid, SeqNum};

/// Which invariant a [`Violation`] breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// Free list ⇔ hold counts disagreement.
    FreeListIntegrity,
    /// Total holds ≠ live mappings + engine reservations (a leak or a
    /// double-release).
    FreeListConservation,
    /// ROB sequence numbers out of age order.
    RobAgeOrder,
    /// Load- or store-queue sequence numbers out of age order.
    LsqAgeOrder,
    /// An RGID beyond its allocator counter, or non-reused destination
    /// generations out of order.
    RgidMonotone,
    /// A store marked as reused.
    StoreReuse,
    /// `verify_pending` on a non-reused-load entry, or a commit gated by
    /// an unfinished verification.
    ReusedLoadVerify,
    /// An issued load-queue entry without a recorded address.
    LoadIssuedAddr,
    /// An issued load despite an older address-known/data-pending store
    /// to the same block.
    ForwardPending,
    /// The CPI-stack account lost or invented commit slots
    /// (`sum(categories) != cycles × commit_width`), or its reuse credit
    /// exceeds the squash-penalty slots it is clamped against.
    CpiConservation,
    /// A basic-block-vector trace lost or invented instructions: each
    /// interval's per-block counts must sum to its instruction count,
    /// and the interval counts must sum to the functional pass's total.
    BbvConservation,
}

impl Rule {
    /// The rule's stable name (also the panic-message prefix, so tests
    /// can `#[should_panic(expected = ...)]` on it).
    pub fn name(self) -> &'static str {
        match self {
            Rule::FreeListIntegrity => "free-list-integrity",
            Rule::FreeListConservation => "free-list-conservation",
            Rule::RobAgeOrder => "rob-age-order",
            Rule::LsqAgeOrder => "lsq-age-order",
            Rule::RgidMonotone => "rgid-monotone",
            Rule::StoreReuse => "store-reuse",
            Rule::ReusedLoadVerify => "reused-load-verify",
            Rule::LoadIssuedAddr => "load-issued-addr",
            Rule::ForwardPending => "forward-pending",
            Rule::CpiConservation => "cpi-conservation",
            Rule::BbvConservation => "bbv-conservation",
        }
    }
}

/// One detected invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The broken rule.
    pub rule: Rule,
    /// What exactly disagreed (register ids, sequence numbers, counts).
    pub detail: String,
}

impl Violation {
    fn new(rule: Rule, detail: impl Into<String>) -> Violation {
        Violation { rule, detail: detail.into() }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.rule.name(), self.detail)
    }
}

/// Checks that `seqs` is strictly increasing (oldest first).
pub fn check_age_order(
    rule: Rule,
    what: &str,
    seqs: impl Iterator<Item = SeqNum>,
) -> Option<Violation> {
    let mut prev: Option<SeqNum> = None;
    for s in seqs {
        if let Some(p) = prev {
            if s <= p {
                return Some(Violation::new(
                    rule,
                    format!("{what} entry {s} follows {p} (must be strictly older-to-younger)"),
                ));
            }
        }
        prev = Some(s);
    }
    None
}

/// Checks hold conservation: every hold in the free list is owned either
/// by a live mapping (RAT or ROB) or by the engine's reservations.
pub fn check_conservation(
    total_holds: u64,
    live_mappings: u64,
    engine_reserved: u64,
) -> Option<Violation> {
    if total_holds != live_mappings + engine_reserved {
        let (verb, n) = if total_holds > live_mappings + engine_reserved {
            ("leaked", total_holds - live_mappings - engine_reserved)
        } else {
            ("lost", live_mappings + engine_reserved - total_holds)
        };
        return Some(Violation::new(
            Rule::FreeListConservation,
            format!(
                "{n} hold(s) {verb}: {total_holds} total holds vs {live_mappings} live \
                 mappings + {engine_reserved} engine reservations"
            ),
        ));
    }
    None
}

/// Checks per-architectural-register RGID sanity over ROB destinations,
/// oldest first: no live generation beyond its allocator counter, and
/// strictly increasing generations across *non-reused* destinations
/// (reused destinations carry forwarded, possibly older generations).
///
/// `counters[a]` is the allocator's current value for architectural
/// register index `a`; entries are `(arch_index, new_rgid, reused)`.
pub fn check_rgids(
    counters: &[u16],
    entries: impl Iterator<Item = (usize, Rgid, bool)>,
) -> Option<Violation> {
    let mut last: [Option<u16>; NUM_ARCH_REGS] = [None; NUM_ARCH_REGS];
    for (a, g, reused) in entries {
        if g.is_null() {
            continue; // nulled by a global reset; never compared again
        }
        if g.value() > counters[a] {
            return Some(Violation::new(
                Rule::RgidMonotone,
                format!("arch r{a} carries {g} beyond its allocator counter {}", counters[a]),
            ));
        }
        if reused {
            continue; // forwarded generation; ordering exemption
        }
        if let Some(prev) = last[a] {
            if g.value() <= prev {
                return Some(Violation::new(
                    Rule::RgidMonotone,
                    format!("arch r{a} allocated {g} after g{prev} (must be strictly increasing)"),
                ));
            }
        }
        last[a] = Some(g.value());
    }
    None
}

/// Checks reuse safety over ROB entries: stores are never reused, and
/// `verify_pending` appears only on reused loads.
///
/// Entries are `(seq, is_store, is_load, reused, verify_pending)`.
pub fn check_reuse_safety(
    entries: impl Iterator<Item = (SeqNum, bool, bool, bool, bool)>,
) -> Option<Violation> {
    for (seq, is_store, is_load, reused, verify_pending) in entries {
        if is_store && reused {
            return Some(Violation::new(
                Rule::StoreReuse,
                format!("store {seq} marked as reused (stores must always execute)"),
            ));
        }
        if verify_pending && !(reused && is_load) {
            return Some(Violation::new(
                Rule::ReusedLoadVerify,
                format!("{seq} has verify_pending but is not a reused load"),
            ));
        }
    }
    None
}

/// Checks that an instruction about to commit is not gated by an
/// unfinished reused-load verification ("every reused load verified
/// before commit"). The commit stage refuses such heads; this rule is
/// the backstop should that gate ever regress.
pub fn check_commit_entry(seq: SeqNum, reused: bool, verify_pending: bool) -> Option<Violation> {
    if verify_pending {
        return Some(Violation::new(
            Rule::ReusedLoadVerify,
            format!(
                "{seq} committing with verify_pending set (reused={reused}); \
                 reused loads must be verified before commit"
            ),
        ));
    }
    None
}

/// Checks the load/store queues: age order in each half, issued loads
/// have addresses, and no issued load coexists with an older
/// address-known/data-pending store to the same block.
pub fn check_lsq<'a>(
    loads: impl Iterator<Item = &'a LqEntry> + Clone,
    stores: impl Iterator<Item = &'a SqEntry> + Clone,
) -> Option<Violation> {
    if let Some(v) = check_age_order(Rule::LsqAgeOrder, "load queue", loads.clone().map(|l| l.seq))
    {
        return Some(v);
    }
    if let Some(v) =
        check_age_order(Rule::LsqAgeOrder, "store queue", stores.clone().map(|s| s.seq))
    {
        return Some(v);
    }
    // Reused entries are exempt: a grant may carry no recorded address
    // (the engine's verification policy covers that case instead).
    for l in loads.clone() {
        if l.issued && !l.reused && l.addr.is_none() {
            return Some(Violation::new(
                Rule::LoadIssuedAddr,
                format!(
                    "load {} issued without a recorded address (invisible to store_check)",
                    l.seq
                ),
            ));
        }
    }
    // Address-known/data-pending stores are the Forward::Pending case;
    // a younger load that issued anyway read stale memory. The filter
    // runs first because such stores are rare (the simulator computes
    // address and data together), keeping the sweep near O(stores).
    for s in stores {
        let (Some(sa), None) = (s.addr, s.data) else { continue };
        for l in loads.clone() {
            if l.seq > s.seq && l.issued && l.addr.is_some_and(|la| la >> 3 == sa >> 3) {
                return Some(Violation::new(
                    Rule::ForwardPending,
                    format!(
                        "load {} issued past store {} (address {sa:#x} known, data pending)",
                        l.seq, s.seq
                    ),
                ));
            }
        }
    }
    None
}

/// Checks the CPI-stack conservation law: the account attributes exactly
/// `cycles × commit_width` commit slots across its categories, and its
/// reuse credit stays within the squash-penalty slots it is clamped to.
pub fn check_cpi_account(
    account: &CycleAccount,
    cycles: u64,
    commit_width: u64,
) -> Option<Violation> {
    let expect = cycles * commit_width;
    let got = account.total_slots();
    if got != expect {
        let (verb, n) =
            if got > expect { ("invented", got - expect) } else { ("lost", expect - got) };
        return Some(Violation::new(
            Rule::CpiConservation,
            format!(
                "{n} commit slot(s) {verb}: account holds {got} slots \
                 vs {cycles} cycles \u{d7} width {commit_width} = {expect}"
            ),
        ));
    }
    let cap = account.get(Category::SquashBranch);
    if account.credit_reuse_cycles > cap {
        return Some(Violation::new(
            Rule::CpiConservation,
            format!(
                "reuse credit {} exceeds the {cap} squash-penalty slot(s) it is clamped to",
                account.credit_reuse_cycles
            ),
        ));
    }
    None
}

/// Checks the basic-block-vector conservation law: within every
/// interval the per-block counts sum to the interval's instruction
/// count, and across intervals the counts sum to `expected_insts` — the
/// instruction total the functional pass reported. A mismatch means the
/// collector dropped or invented instructions, which would silently skew
/// every downstream cluster weight.
pub fn check_bbv(intervals: &[crate::bbv::BbvInterval], expected_insts: u64) -> Option<Violation> {
    let mut total = 0u64;
    for (i, iv) in intervals.iter().enumerate() {
        let got = iv.block_insts();
        if got != iv.insts {
            return Some(Violation::new(
                Rule::BbvConservation,
                format!(
                    "interval {i} (start {}): block counts sum to {got}, \
                     interval executed {} instruction(s)",
                    iv.start_inst, iv.insts
                ),
            ));
        }
        total += iv.insts;
    }
    if total != expected_insts {
        return Some(Violation::new(
            Rule::BbvConservation,
            format!(
                "intervals account for {total} instruction(s), \
                 functional pass executed {expected_insts}"
            ),
        ));
    }
    None
}

/// How often the debug-build checker sweeps the machine state, from the
/// `MSSR_CHECK_STRIDE` environment variable (read once): `1` (the
/// default) checks every cycle, `N` every N cycles, `0` disables the
/// per-cycle sweep (the post-squash sweep still runs). A relief valve
/// for long debug-build simulations; CI leaves it unset.
// Only the debug-build sweep in `Simulator::step` calls this.
#[cfg_attr(not(debug_assertions), allow(dead_code))]
pub fn check_stride() -> u64 {
    use std::sync::OnceLock;
    static STRIDE: OnceLock<u64> = OnceLock::new();
    *STRIDE.get_or_init(|| {
        std::env::var("MSSR_CHECK_STRIDE").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
    })
}

/// Sweeps the full machine state against every [`Rule`], returning all
/// violations found (empty for a healthy pipeline). Allocating
/// convenience wrapper over [`machine_violations_with`] for tests and
/// tools; the debug-build hot path passes scratch bitmaps instead.
pub(crate) fn machine_violations(st: &MachineState, engine: &dyn ReuseEngine) -> Vec<Violation> {
    let mut live = Vec::new();
    let mut queued = Vec::new();
    machine_violations_with(st, engine, &mut live, &mut queued)
}

/// The full rule sweep over caller-provided scratch bitmaps (cleared and
/// refilled), so a clean sweep allocates nothing: `Vec::new()` defers its
/// first allocation to the first push, and violations are the only thing
/// pushed.
pub(crate) fn machine_violations_with(
    st: &MachineState,
    engine: &dyn ReuseEngine,
    live: &mut Vec<bool>,
    queued: &mut Vec<bool>,
) -> Vec<Violation> {
    let mut out = Vec::new();

    // Free-list internal integrity, then the per-mapping hold checks
    // (a mapped or in-flight register must never be allocatable).
    if let Err(detail) = st.free_list.validate_with(queued) {
        out.push(Violation { rule: Rule::FreeListIntegrity, detail });
    }
    for a in ArchReg::all() {
        let p = st.rat.lookup(a);
        if st.free_list.holds(p) == 0 {
            out.push(Violation {
                rule: Rule::FreeListIntegrity,
                detail: format!("RAT maps {a} to {p} which has no holds"),
            });
        }
    }
    for e in st.rob.iter() {
        if let Some(d) = e.dst {
            for (what, p) in [("destination", d.new_preg), ("rollback target", d.prev_preg)] {
                if st.free_list.holds(p) == 0 {
                    out.push(Violation {
                        rule: Rule::FreeListIntegrity,
                        detail: format!("ROB {} has {what} {p} with no holds", e.seq),
                    });
                }
            }
        }
    }

    // Hold conservation: every hold belongs to a live mapping (RAT
    // target, in-flight ROB destination, or rollback target — as a
    // *set*: each live register carries exactly one pipeline hold) or
    // to the engine's reservations.
    live.clear();
    live.resize(st.free_list.num_regs(), false);
    for a in ArchReg::all() {
        live[st.rat.lookup(a).index()] = true;
    }
    for e in st.rob.iter() {
        if let Some(d) = e.dst {
            live[d.new_preg.index()] = true;
            live[d.prev_preg.index()] = true;
        }
    }
    let live_mappings = live.iter().filter(|&&l| l).count() as u64;
    if let Some(v) =
        check_conservation(st.free_list.total_holds(), live_mappings, engine.reserved_hold_count())
    {
        out.push(v);
    }

    if let Some(v) = check_age_order(Rule::RobAgeOrder, "ROB", st.rob.iter().map(|e| e.seq)) {
        out.push(v);
    }
    if let Some(v) = check_rgids(
        st.rgids.counters(),
        st.rob.iter().filter_map(|e| e.dst.map(|d| (d.arch.index(), d.new_rgid, e.reused))),
    ) {
        out.push(v);
    }
    if let Some(v) = check_reuse_safety(
        st.rob
            .iter()
            .map(|e| (e.seq, e.inst.is_store(), e.inst.is_load(), e.reused, e.verify_pending)),
    ) {
        out.push(v);
    }
    if let Some(v) = check_lsq(st.lsq.loads(), st.lsq.stores()) {
        out.push(v);
    }
    // The account accrues immediately before the cycle counter
    // increments, so the law holds exactly at every sweep point: the
    // per-cycle sweep (after the increment) and the post-squash
    // thorough sweep (mid-cycle, before this cycle's accrual).
    if let Some(v) = check_cpi_account(&st.account, st.cycle, st.cfg.commit_width as u64) {
        out.push(v);
    }
    out
}

/// One fused, allocation-free pass over the machine state checking the
/// same invariants as [`machine_violations`] minus the free list's
/// internal-integrity scan (covered by the thorough sweep after every
/// squash). This is the per-cycle debug-build hot path: it only answers
/// clean/dirty; diagnosis is re-derived by the rule functions when it
/// reports dirty. Kept semantically a subset of the thorough sweep —
/// [`assert_sweep`] enforces that.
#[cfg(debug_assertions)]
pub(crate) fn sweep_is_clean(
    st: &MachineState,
    engine: &dyn ReuseEngine,
    live: &mut Vec<bool>,
) -> bool {
    let fl = &st.free_list;
    live.clear();
    live.resize(fl.num_regs(), false);
    let mut live_count: u64 = 0;
    for a in ArchReg::all() {
        let p = st.rat.lookup(a);
        if fl.holds(p) == 0 {
            return false;
        }
        if !live[p.index()] {
            live[p.index()] = true;
            live_count += 1;
        }
    }
    let counters = st.rgids.counters();
    let mut prev: Option<SeqNum> = None;
    let mut last: [Option<u16>; NUM_ARCH_REGS] = [None; NUM_ARCH_REGS];
    for e in st.rob.iter() {
        if prev.is_some_and(|p| e.seq <= p) {
            return false;
        }
        prev = Some(e.seq);
        if e.inst.is_store() && e.reused {
            return false;
        }
        if e.verify_pending && !(e.reused && e.inst.is_load()) {
            return false;
        }
        if let Some(d) = e.dst {
            for p in [d.new_preg, d.prev_preg] {
                if fl.holds(p) == 0 {
                    return false;
                }
                if !live[p.index()] {
                    live[p.index()] = true;
                    live_count += 1;
                }
            }
            let g = d.new_rgid;
            if !g.is_null() {
                let a = d.arch.index();
                if g.value() > counters[a] {
                    return false;
                }
                if !e.reused {
                    if last[a].is_some_and(|prev| g.value() <= prev) {
                        return false;
                    }
                    last[a] = Some(g.value());
                }
            }
        }
    }
    fl.total_holds() == live_count + engine.reserved_hold_count()
        && check_lsq(st.lsq.loads(), st.lsq.stores()).is_none()
        && check_cpi_account(&st.account, st.cycle, st.cfg.commit_width as u64).is_none()
}

/// Panics on the first invariant violation (debug-build backstop).
/// The fused sweep screens; the rule functions produce the report.
#[cfg(debug_assertions)]
pub(crate) fn assert_sweep(st: &MachineState, engine: &dyn ReuseEngine, scratch: &mut Scratch) {
    if sweep_is_clean(st, engine, &mut scratch.live) {
        return;
    }
    assert_thorough(st, engine, scratch);
    panic!(
        "invariant sweep flagged cycle {} but the thorough check found nothing \
         (fast/thorough sweep divergence — this is a checker bug)",
        st.cycle
    );
}

/// The thorough variant: full rule-function sweep including free-list
/// internal integrity. Run after every squash and on demand.
#[cfg(debug_assertions)]
pub(crate) fn assert_thorough(st: &MachineState, engine: &dyn ReuseEngine, scratch: &mut Scratch) {
    if let Some(v) =
        machine_violations_with(st, engine, &mut scratch.live, &mut scratch.queued).first()
    {
        panic!("invariant violation at cycle {}: {v}", st.cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(v: &[u64]) -> impl Iterator<Item = SeqNum> + '_ {
        v.iter().map(|&s| SeqNum::new(s))
    }

    #[test]
    fn age_order_accepts_strictly_increasing() {
        assert!(check_age_order(Rule::RobAgeOrder, "rob", seqs(&[1, 2, 5, 9])).is_none());
        assert!(check_age_order(Rule::RobAgeOrder, "rob", seqs(&[])).is_none());
        assert!(check_age_order(Rule::RobAgeOrder, "rob", seqs(&[7])).is_none());
    }

    #[test]
    fn age_order_rejects_reorder_and_duplicate() {
        // A reordered LSQ push: entry 4 dispatched after entry 5.
        let v = check_age_order(Rule::LsqAgeOrder, "load queue", seqs(&[2, 5, 4])).unwrap();
        assert_eq!(v.rule, Rule::LsqAgeOrder);
        assert!(v.detail.contains("#4 follows #5"), "{}", v.detail);
        assert!(v.to_string().starts_with("lsq-age-order:"));
        assert!(check_age_order(Rule::RobAgeOrder, "rob", seqs(&[3, 3])).is_some());
    }

    #[test]
    fn conservation_balances_live_and_reserved() {
        assert!(check_conservation(40, 33, 7).is_none());
        let leak = check_conservation(41, 33, 7).unwrap();
        assert_eq!(leak.rule, Rule::FreeListConservation);
        assert!(leak.detail.contains("1 hold(s) leaked"), "{}", leak.detail);
        let lost = check_conservation(39, 33, 7).unwrap();
        assert!(lost.detail.contains("lost"), "{}", lost.detail);
    }

    #[test]
    fn rgid_rules_allow_forwarding_but_not_fabrication() {
        let mut counters = vec![0u16; NUM_ARCH_REGS];
        counters[5] = 10;
        // Allocation order 3, 7 is fine; a reused entry forwarding the
        // older generation 4 in between is the paper's §3.1 forwarding.
        let ok = [(5, Rgid::new(3), false), (5, Rgid::new(4), true), (5, Rgid::new(7), false)];
        assert!(check_rgids(&counters, ok.iter().copied()).is_none());
        // A generation beyond the allocator counter cannot exist.
        let beyond = [(5, Rgid::new(11), false)];
        let v = check_rgids(&counters, beyond.iter().copied()).unwrap();
        assert_eq!(v.rule, Rule::RgidMonotone);
        assert!(v.detail.contains("beyond its allocator counter"), "{}", v.detail);
        // Non-reused allocations must be strictly increasing.
        let reorder = [(5, Rgid::new(7), false), (5, Rgid::new(3), false)];
        assert!(check_rgids(&counters, reorder.iter().copied()).is_some());
        // Null generations are never compared.
        let nulls = [(5, Rgid::NULL, false), (5, Rgid::new(1), false)];
        assert!(check_rgids(&counters, nulls.iter().copied()).is_none());
    }

    #[test]
    fn reuse_safety_rejects_reused_stores() {
        // (seq, is_store, is_load, reused, verify_pending)
        let ok = [
            (SeqNum::new(1), false, true, true, true),
            (SeqNum::new(2), true, false, false, false),
        ];
        assert!(check_reuse_safety(ok.iter().copied()).is_none());
        let store = [(SeqNum::new(3), true, false, true, false)];
        let v = check_reuse_safety(store.iter().copied()).unwrap();
        assert_eq!(v.rule, Rule::StoreReuse);
        let stray = [(SeqNum::new(4), false, false, false, true)];
        assert_eq!(check_reuse_safety(stray.iter().copied()).unwrap().rule, Rule::ReusedLoadVerify);
    }

    #[test]
    fn commit_gate_requires_verification() {
        assert!(check_commit_entry(SeqNum::new(9), true, false).is_none());
        let v = check_commit_entry(SeqNum::new(9), true, true).unwrap();
        assert_eq!(v.rule, Rule::ReusedLoadVerify);
        assert!(v.detail.contains("before commit"));
    }

    #[test]
    fn cpi_account_balances_slots_and_credit() {
        let mut a = CycleAccount::default();
        a.accrue(5, Category::MemStall, 8);
        a.accrue(0, Category::SquashBranch, 8);
        assert!(check_cpi_account(&a, 2, 8).is_none());
        // One slot too few attributed (an uncounted cycle).
        let lost = check_cpi_account(&a, 3, 8).unwrap();
        assert_eq!(lost.rule, Rule::CpiConservation);
        assert!(lost.detail.contains("lost"), "{}", lost.detail);
        // One slot too many (a double-blamed cycle).
        let invented = check_cpi_account(&a, 1, 8).unwrap();
        assert!(invented.detail.contains("invented"), "{}", invented.detail);
        // Credit within the squash-penalty cap is fine; beyond it is not.
        a.credit_reuse_cycles = 8;
        assert!(check_cpi_account(&a, 2, 8).is_none());
        a.credit_reuse_cycles = 9;
        let over = check_cpi_account(&a, 2, 8).unwrap();
        assert_eq!(over.rule, Rule::CpiConservation);
        assert!(over.detail.contains("exceeds"), "{}", over.detail);
    }

    #[test]
    fn lsq_rules_cover_order_addresses_and_pending_stores() {
        let load = |seq: u64, addr: Option<u64>, issued: bool| LqEntry {
            seq: SeqNum::new(seq),
            addr,
            issued,
            value: None,
            reused: false,
        };
        let store = |seq: u64, addr: Option<u64>, data: Option<u64>| SqEntry {
            seq: SeqNum::new(seq),
            addr,
            data,
        };

        let clean_l = [load(2, Some(0x100), true), load(6, None, false)];
        let clean_s = [store(1, Some(0x200), Some(7)), store(4, None, None)];
        assert!(check_lsq(clean_l.iter(), clean_s.iter()).is_none());

        let reordered = [load(6, None, false), load(2, None, false)];
        assert_eq!(check_lsq(reordered.iter(), clean_s.iter()).unwrap().rule, Rule::LsqAgeOrder);

        let missing_addr = [load(2, None, true)];
        assert_eq!(
            check_lsq(missing_addr.iter(), clean_s.iter()).unwrap().rule,
            Rule::LoadIssuedAddr
        );

        // Store 3 knows its address but not its data; load 5 to the same
        // block must not have issued.
        let pend_s = [store(3, Some(0x104), None)];
        let pend_l = [load(5, Some(0x100), true)];
        let v = check_lsq(pend_l.iter(), pend_s.iter()).unwrap();
        assert_eq!(v.rule, Rule::ForwardPending);
        // An older load, a different block, or an unissued load is fine.
        let ok_l = [load(2, Some(0x100), true)];
        assert!(check_lsq(ok_l.iter(), pend_s.iter()).is_none(), "older load");
        let other_l = [load(5, Some(0x108), true)];
        assert!(check_lsq(other_l.iter(), pend_s.iter()).is_none(), "different block");
        let unissued_l = [load(5, Some(0x100), false)];
        assert!(check_lsq(unissued_l.iter(), pend_s.iter()).is_none(), "not yet issued");
    }
}
