//! A pure, in-order functional interpreter for the toy ISA.
//!
//! The interpreter shares the pipeline's value semantics ([`crate::exec`])
//! and memory model but has no timing, speculation, or renaming — it is
//! an independent architectural oracle. Differential tests run the same
//! program through the out-of-order pipeline (with and without reuse
//! engines) and through this interpreter, and require bit-identical final
//! state; that catches bugs in either implementation.

use mssr_isa::{ArchReg, Opcode, Pc, Program, NUM_ARCH_REGS};

use crate::exec;
use crate::mem::MainMemory;

/// Architectural state as one step of execution sees it: registers and
/// memory, nothing else. The interpreter implements it over its own
/// flat register file; the pipeline's functional fast-forward implements
/// it over the RAT/PRF and simulated memory, so both run the *same*
/// [`arch_step`] semantics and cannot drift apart.
pub(crate) trait ArchState {
    /// Reads an architectural register.
    fn reg(&self, a: ArchReg) -> u64;
    /// Writes an architectural register. Callers never pass `x0`
    /// ([`arch_step`] centralizes that guard).
    fn set_reg(&mut self, a: ArchReg, v: u64);
    /// Reads a 64-bit word (address already wrapped).
    fn mem_read(&mut self, addr: u64) -> u64;
    /// Writes a 64-bit word (address already wrapped).
    fn mem_write(&mut self, addr: u64, v: u64);
    /// Wraps an address into the memory image.
    fn wrap(&self, addr: u64) -> u64;
}

/// What one architectural step was, for consumers (the functional
/// fast-forward) that warm microarchitectural structures alongside the
/// execution. Plain ALU ops, `nop`, and `jal` carry nothing a warmer
/// needs beyond the PC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ArchKind {
    /// No side information.
    Plain,
    /// A conditional branch and its resolved direction.
    Cond {
        /// Whether the branch was taken.
        taken: bool,
    },
    /// An indirect jump and its resolved target.
    Jalr {
        /// The target PC.
        target: Pc,
    },
    /// A load and its (wrapped) address.
    Load {
        /// The accessed address.
        addr: u64,
    },
    /// A store and its (wrapped) address.
    Store {
        /// The accessed address.
        addr: u64,
    },
}

/// The result of one architectural step.
pub(crate) struct ArchOutcome {
    /// Where control flow goes next; `None` after `halt`.
    pub next: Option<Pc>,
    /// What the step was.
    pub kind: ArchKind,
}

fn write_dst(st: &mut impl ArchState, dst: Option<ArchReg>, v: u64) {
    if let Some(d) = dst {
        if !d.is_zero() {
            st.set_reg(d, v);
        }
    }
}

/// Executes the instruction at `pc` against `st`. Returns `None` when
/// `pc` is outside the program image.
pub(crate) fn arch_step(program: &Program, pc: Pc, st: &mut impl ArchState) -> Option<ArchOutcome> {
    let inst = *program.fetch(pc)?;
    let a = inst.src1().map_or(0, |r| st.reg(r));
    let b = inst.src2().map_or(0, |r| st.reg(r));
    let op = inst.op();
    let fallthrough = pc.next();
    let mut next = fallthrough;
    let mut kind = ArchKind::Plain;
    match op {
        Opcode::Halt => return Some(ArchOutcome { next: None, kind }),
        Opcode::Nop => {}
        Opcode::Ld => {
            let addr = st.wrap(exec::mem_addr(&inst, a));
            let v = st.mem_read(addr);
            write_dst(st, inst.dst(), v);
            kind = ArchKind::Load { addr };
        }
        Opcode::St => {
            let addr = st.wrap(exec::mem_addr(&inst, a));
            st.mem_write(addr, b);
            kind = ArchKind::Store { addr };
        }
        Opcode::Jal => {
            write_dst(st, inst.dst(), fallthrough.addr());
            next = inst.target().expect("jal has a target");
        }
        Opcode::Jalr => {
            let target = Pc::new(a.wrapping_add(inst.imm() as u64));
            write_dst(st, inst.dst(), fallthrough.addr());
            next = target;
            kind = ArchKind::Jalr { target };
        }
        op if op.is_cond_branch() => {
            let taken = exec::branch_taken(op, a, b);
            if taken {
                next = inst.target().expect("branch has a target");
            }
            kind = ArchKind::Cond { taken };
        }
        _ => {
            let v = exec::alu(op, a, b, inst.imm()).expect("ALU opcode");
            write_dst(st, inst.dst(), v);
        }
    }
    Some(ArchOutcome { next: Some(next), kind })
}

/// Why an interpretation run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// A `halt` instruction executed.
    Halted,
    /// The instruction bound was reached first.
    InstLimit,
    /// Control flow left the program image (an architectural bug in the
    /// program itself — correct programs end in `halt`).
    OutOfProgram,
}

/// The functional interpreter.
///
/// # Example
///
/// ```
/// use mssr_isa::{regs::*, Assembler};
/// use mssr_sim::{Interpreter, StopReason};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Assembler::new();
/// a.li(T0, 6);
/// a.li(T1, 7);
/// a.mul(T2, T0, T1);
/// a.st(ZERO, T2, 0x100);
/// a.halt();
/// let mut it = Interpreter::new(a.assemble()?, 1 << 16);
/// assert_eq!(it.run(1000), StopReason::Halted);
/// assert_eq!(it.read_mem_u64(0x100), 42);
/// assert_eq!(it.reg(T2), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Interpreter {
    program: Program,
    regs: [u64; NUM_ARCH_REGS],
    memory: MainMemory,
    pc: Pc,
    executed: u64,
}

impl Interpreter {
    /// Creates an interpreter with `mem_bytes` of zeroed memory
    /// (power of two, like the simulator's).
    ///
    /// # Panics
    ///
    /// Panics if `mem_bytes` is not a power of two.
    pub fn new(program: Program, mem_bytes: usize) -> Interpreter {
        let pc = program.base();
        Interpreter {
            program,
            regs: [0; NUM_ARCH_REGS],
            memory: MainMemory::new(mem_bytes),
            pc,
            executed: 0,
        }
    }

    /// Reads an architectural register.
    pub fn reg(&self, a: ArchReg) -> u64 {
        self.regs[a.index()]
    }

    /// Writes an architectural register (`x0` writes are ignored).
    pub fn set_reg(&mut self, a: ArchReg, v: u64) {
        if !a.is_zero() {
            self.regs[a.index()] = v;
        }
    }

    /// Writes a 64-bit word of memory (program setup).
    pub fn write_mem_u64(&mut self, addr: u64, v: u64) {
        self.memory.write_u64(addr, v);
    }

    /// Reads a 64-bit word of memory.
    pub fn read_mem_u64(&self, addr: u64) -> u64 {
        self.memory.read_u64(addr)
    }

    /// Instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Current program counter.
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Executes one instruction. Returns `None` while running, or the
    /// stop reason.
    pub fn step(&mut self) -> Option<StopReason> {
        let mut st = FlatState { regs: &mut self.regs, memory: &mut self.memory };
        let Some(out) = arch_step(&self.program, self.pc, &mut st) else {
            return Some(StopReason::OutOfProgram);
        };
        self.executed += 1;
        match out.next {
            Some(next) => {
                self.pc = next;
                None
            }
            None => Some(StopReason::Halted),
        }
    }

    /// Runs until halt, departure from the program, or `max_insts`.
    pub fn run(&mut self, max_insts: u64) -> StopReason {
        while self.executed < max_insts {
            if let Some(r) = self.step() {
                return r;
            }
        }
        StopReason::InstLimit
    }
}

/// The interpreter's flat register file and memory as an [`ArchState`].
struct FlatState<'a> {
    regs: &'a mut [u64; NUM_ARCH_REGS],
    memory: &'a mut MainMemory,
}

impl ArchState for FlatState<'_> {
    fn reg(&self, a: ArchReg) -> u64 {
        self.regs[a.index()]
    }

    fn set_reg(&mut self, a: ArchReg, v: u64) {
        self.regs[a.index()] = v;
    }

    fn mem_read(&mut self, addr: u64) -> u64 {
        self.memory.read_u64(addr)
    }

    fn mem_write(&mut self, addr: u64, v: u64) {
        self.memory.write_u64(addr, v)
    }

    fn wrap(&self, addr: u64) -> u64 {
        self.memory.wrap(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_isa::{regs::*, Assembler};

    fn run_program(build: impl FnOnce(&mut Assembler)) -> Interpreter {
        let mut a = Assembler::new();
        build(&mut a);
        let mut it = Interpreter::new(a.assemble().unwrap(), 1 << 16);
        assert_eq!(it.run(1_000_000), StopReason::Halted);
        it
    }

    #[test]
    fn arithmetic_and_memory() {
        let it = run_program(|a| {
            a.li(T0, 5);
            a.li(T1, 3);
            a.sub(T2, T0, T1);
            a.st(ZERO, T2, 0x80);
            a.ld(T3, ZERO, 0x80);
            a.slli(T3, T3, 4);
            a.halt();
        });
        assert_eq!(it.reg(T2), 2);
        assert_eq!(it.reg(T3), 32);
        assert_eq!(it.read_mem_u64(0x80), 2);
    }

    #[test]
    fn loops_and_branches() {
        let it = run_program(|a| {
            a.li(T0, 0);
            a.li(T1, 10);
            a.label("loop");
            a.addi(T0, T0, 1);
            a.blt(T0, T1, "loop");
            a.halt();
        });
        assert_eq!(it.reg(T0), 10);
        assert_eq!(it.executed(), 2 + 20 + 1);
    }

    #[test]
    fn calls_and_returns() {
        let it = run_program(|a| {
            a.li(A0, 4);
            a.call("double");
            a.mv(S0, A0);
            a.call("double");
            a.halt();
            a.label("double");
            a.slli(A0, A0, 1);
            a.ret();
        });
        assert_eq!(it.reg(S0), 8);
        assert_eq!(it.reg(A0), 16);
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut it = run_program(|a| {
            a.li(T0, 7);
            a.add(ZERO, T0, T0); // discarded
            a.halt();
        });
        assert_eq!(it.reg(ZERO), 0);
        it.set_reg(ZERO, 99);
        assert_eq!(it.reg(ZERO), 0);
    }

    #[test]
    fn out_of_program_detected() {
        let mut a = Assembler::new();
        a.nop(); // falls off the end, no halt
        let mut it = Interpreter::new(a.assemble().unwrap(), 1 << 12);
        assert_eq!(it.run(100), StopReason::OutOfProgram);
    }

    #[test]
    fn inst_limit() {
        let mut a = Assembler::new();
        a.label("spin");
        a.j("spin");
        let mut it = Interpreter::new(a.assemble().unwrap(), 1 << 12);
        assert_eq!(it.run(50), StopReason::InstLimit);
        assert_eq!(it.executed(), 50);
    }

    #[test]
    fn matches_pipeline_on_a_branchy_kernel() {
        let build = |a: &mut Assembler| {
            a.li(S0, 0);
            a.li(S1, 64);
            a.li(S3, 0x777);
            a.li(S4, 0x9e3779b97f4a7c15u64 as i64);
            a.label("loop");
            a.mul(S3, S3, S4);
            a.srli(T0, S3, 29);
            a.xor(S3, S3, T0);
            a.andi(T1, S3, 1);
            a.beq(T1, ZERO, "skip");
            a.addi(S5, S5, 3);
            a.label("skip");
            a.slli(T2, S0, 3);
            a.st(T2, S3, 0x1000);
            a.addi(S0, S0, 1);
            a.blt(S0, S1, "loop");
            a.halt();
        };
        let mut a1 = Assembler::new();
        build(&mut a1);
        let program = a1.assemble().unwrap();
        let mut it = Interpreter::new(program.clone(), 1 << 20);
        assert_eq!(it.run(1_000_000), StopReason::Halted);
        let mut sim = crate::Simulator::new(
            crate::SimConfig::default().with_mem_bytes(1 << 20).with_max_cycles(1_000_000),
            program,
        );
        sim.run();
        for i in 0..64u64 {
            assert_eq!(
                it.read_mem_u64(0x1000 + 8 * i),
                sim.read_mem_u64(0x1000 + 8 * i),
                "slot {i}"
            );
        }
    }
}
