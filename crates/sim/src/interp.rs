//! A pure, in-order functional interpreter for the toy ISA.
//!
//! The interpreter shares the pipeline's value semantics ([`crate::exec`])
//! and memory model but has no timing, speculation, or renaming — it is
//! an independent architectural oracle. Differential tests run the same
//! program through the out-of-order pipeline (with and without reuse
//! engines) and through this interpreter, and require bit-identical final
//! state; that catches bugs in either implementation.

use mssr_isa::{ArchReg, Opcode, Pc, Program, NUM_ARCH_REGS};

use crate::exec;
use crate::mem::MainMemory;

/// Why an interpretation run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// A `halt` instruction executed.
    Halted,
    /// The instruction bound was reached first.
    InstLimit,
    /// Control flow left the program image (an architectural bug in the
    /// program itself — correct programs end in `halt`).
    OutOfProgram,
}

/// The functional interpreter.
///
/// # Example
///
/// ```
/// use mssr_isa::{regs::*, Assembler};
/// use mssr_sim::{Interpreter, StopReason};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Assembler::new();
/// a.li(T0, 6);
/// a.li(T1, 7);
/// a.mul(T2, T0, T1);
/// a.st(ZERO, T2, 0x100);
/// a.halt();
/// let mut it = Interpreter::new(a.assemble()?, 1 << 16);
/// assert_eq!(it.run(1000), StopReason::Halted);
/// assert_eq!(it.read_mem_u64(0x100), 42);
/// assert_eq!(it.reg(T2), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Interpreter {
    program: Program,
    regs: [u64; NUM_ARCH_REGS],
    memory: MainMemory,
    pc: Pc,
    executed: u64,
}

impl Interpreter {
    /// Creates an interpreter with `mem_bytes` of zeroed memory
    /// (power of two, like the simulator's).
    ///
    /// # Panics
    ///
    /// Panics if `mem_bytes` is not a power of two.
    pub fn new(program: Program, mem_bytes: usize) -> Interpreter {
        let pc = program.base();
        Interpreter {
            program,
            regs: [0; NUM_ARCH_REGS],
            memory: MainMemory::new(mem_bytes),
            pc,
            executed: 0,
        }
    }

    /// Reads an architectural register.
    pub fn reg(&self, a: ArchReg) -> u64 {
        self.regs[a.index()]
    }

    /// Writes an architectural register (`x0` writes are ignored).
    pub fn set_reg(&mut self, a: ArchReg, v: u64) {
        if !a.is_zero() {
            self.regs[a.index()] = v;
        }
    }

    /// Writes a 64-bit word of memory (program setup).
    pub fn write_mem_u64(&mut self, addr: u64, v: u64) {
        self.memory.write_u64(addr, v);
    }

    /// Reads a 64-bit word of memory.
    pub fn read_mem_u64(&self, addr: u64) -> u64 {
        self.memory.read_u64(addr)
    }

    /// Instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Current program counter.
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Executes one instruction. Returns `None` while running, or the
    /// stop reason.
    pub fn step(&mut self) -> Option<StopReason> {
        let Some(&inst) = self.program.fetch(self.pc) else {
            return Some(StopReason::OutOfProgram);
        };
        self.executed += 1;
        let a = inst.src1().map_or(0, |r| self.reg(r));
        let b = inst.src2().map_or(0, |r| self.reg(r));
        let op = inst.op();
        let mut next = self.pc.next();
        match op {
            Opcode::Halt => return Some(StopReason::Halted),
            Opcode::Nop => {}
            Opcode::Ld => {
                let addr = self.memory.wrap(exec::mem_addr(&inst, a));
                let v = self.memory.read_u64(addr);
                self.set_reg(inst.dst().expect("loads write a register"), v);
            }
            Opcode::St => {
                let addr = self.memory.wrap(exec::mem_addr(&inst, a));
                self.memory.write_u64(addr, b);
            }
            Opcode::Jal => {
                if let Some(d) = inst.dst() {
                    self.set_reg(d, next.addr());
                }
                next = inst.target().expect("jal has a target");
            }
            Opcode::Jalr => {
                let target = Pc::new(a.wrapping_add(inst.imm() as u64));
                if let Some(d) = inst.dst() {
                    self.set_reg(d, next.addr());
                }
                next = target;
            }
            op if op.is_cond_branch() => {
                if exec::branch_taken(op, a, b) {
                    next = inst.target().expect("branch has a target");
                }
            }
            _ => {
                let v = exec::alu(op, a, b, inst.imm()).expect("ALU opcode");
                if let Some(d) = inst.dst() {
                    self.set_reg(d, v);
                }
            }
        }
        self.pc = next;
        None
    }

    /// Runs until halt, departure from the program, or `max_insts`.
    pub fn run(&mut self, max_insts: u64) -> StopReason {
        while self.executed < max_insts {
            if let Some(r) = self.step() {
                return r;
            }
        }
        StopReason::InstLimit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_isa::{regs::*, Assembler};

    fn run_program(build: impl FnOnce(&mut Assembler)) -> Interpreter {
        let mut a = Assembler::new();
        build(&mut a);
        let mut it = Interpreter::new(a.assemble().unwrap(), 1 << 16);
        assert_eq!(it.run(1_000_000), StopReason::Halted);
        it
    }

    #[test]
    fn arithmetic_and_memory() {
        let it = run_program(|a| {
            a.li(T0, 5);
            a.li(T1, 3);
            a.sub(T2, T0, T1);
            a.st(ZERO, T2, 0x80);
            a.ld(T3, ZERO, 0x80);
            a.slli(T3, T3, 4);
            a.halt();
        });
        assert_eq!(it.reg(T2), 2);
        assert_eq!(it.reg(T3), 32);
        assert_eq!(it.read_mem_u64(0x80), 2);
    }

    #[test]
    fn loops_and_branches() {
        let it = run_program(|a| {
            a.li(T0, 0);
            a.li(T1, 10);
            a.label("loop");
            a.addi(T0, T0, 1);
            a.blt(T0, T1, "loop");
            a.halt();
        });
        assert_eq!(it.reg(T0), 10);
        assert_eq!(it.executed(), 2 + 20 + 1);
    }

    #[test]
    fn calls_and_returns() {
        let it = run_program(|a| {
            a.li(A0, 4);
            a.call("double");
            a.mv(S0, A0);
            a.call("double");
            a.halt();
            a.label("double");
            a.slli(A0, A0, 1);
            a.ret();
        });
        assert_eq!(it.reg(S0), 8);
        assert_eq!(it.reg(A0), 16);
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut it = run_program(|a| {
            a.li(T0, 7);
            a.add(ZERO, T0, T0); // discarded
            a.halt();
        });
        assert_eq!(it.reg(ZERO), 0);
        it.set_reg(ZERO, 99);
        assert_eq!(it.reg(ZERO), 0);
    }

    #[test]
    fn out_of_program_detected() {
        let mut a = Assembler::new();
        a.nop(); // falls off the end, no halt
        let mut it = Interpreter::new(a.assemble().unwrap(), 1 << 12);
        assert_eq!(it.run(100), StopReason::OutOfProgram);
    }

    #[test]
    fn inst_limit() {
        let mut a = Assembler::new();
        a.label("spin");
        a.j("spin");
        let mut it = Interpreter::new(a.assemble().unwrap(), 1 << 12);
        assert_eq!(it.run(50), StopReason::InstLimit);
        assert_eq!(it.executed(), 50);
    }

    #[test]
    fn matches_pipeline_on_a_branchy_kernel() {
        let build = |a: &mut Assembler| {
            a.li(S0, 0);
            a.li(S1, 64);
            a.li(S3, 0x777);
            a.li(S4, 0x9e3779b97f4a7c15u64 as i64);
            a.label("loop");
            a.mul(S3, S3, S4);
            a.srli(T0, S3, 29);
            a.xor(S3, S3, T0);
            a.andi(T1, S3, 1);
            a.beq(T1, ZERO, "skip");
            a.addi(S5, S5, 3);
            a.label("skip");
            a.slli(T2, S0, 3);
            a.st(T2, S3, 0x1000);
            a.addi(S0, S0, 1);
            a.blt(S0, S1, "loop");
            a.halt();
        };
        let mut a1 = Assembler::new();
        build(&mut a1);
        let program = a1.assemble().unwrap();
        let mut it = Interpreter::new(program.clone(), 1 << 20);
        assert_eq!(it.run(1_000_000), StopReason::Halted);
        let mut sim = crate::Simulator::new(
            crate::SimConfig::default().with_mem_bytes(1 << 20).with_max_cycles(1_000_000),
            program,
        );
        sim.run();
        for i in 0..64u64 {
            assert_eq!(
                it.read_mem_u64(0x1000 + 8 * i),
                sim.read_mem_u64(0x1000 + 8 * i),
                "slot {i}"
            );
        }
    }
}
