//! # mssr — Multi-Stream Squash Reuse
//!
//! Facade crate for the MSSR reproduction workspace. It re-exports the
//! public API of the individual crates so that examples, integration tests,
//! and downstream users can depend on a single crate:
//!
//! * [`isa`] — the toy RISC instruction set and assembler,
//! * [`sim`] — the cycle-level out-of-order superscalar simulator,
//! * [`core`] — the paper's Multi-Stream Squash Reuse mechanism plus the
//!   Register Integration and DCI baselines,
//! * [`workloads`] — microbenchmarks and SPEC/GAP-style kernels.
//!
//! See `DESIGN.md` at the repository root for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured results.
//!
//! # Example
//!
//! ```
//! use mssr::isa::{regs::*, Assembler};
//! use mssr::sim::{Simulator, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Assembler::new();
//! a.li(T0, 0);
//! a.li(T1, 1000);
//! a.label("loop");
//! a.addi(T0, T0, 1);
//! a.blt(T0, T1, "loop");
//! a.halt();
//! let program = a.assemble()?;
//!
//! let mut sim = Simulator::new(SimConfig::default(), program);
//! let stats = sim.run();
//! assert!(stats.committed_instructions > 2000);
//! # Ok(())
//! # }
//! ```

pub use mssr_core as core;
pub use mssr_isa as isa;
pub use mssr_sim as sim;
pub use mssr_workloads as workloads;
