//! The paper's Listing-1 microbenchmark: nested hard-to-predict branches
//! with a reconvergence region, in both the nested-mispred and
//! linear-mispred variants (§2.2.4). Runs the no-reuse baseline, DCI
//! (single-stream), Multi-Stream Squash Reuse, and Register Integration,
//! and prints the reconvergence-type breakdown behind Figure 4.
//!
//! ```sh
//! cargo run --release --example nested_branches
//! ```

use mssr::core::{MssrConfig, MultiStreamReuse, RegisterIntegration, RiConfig};
use mssr::sim::{ReuseEngine, SimConfig};
use mssr::workloads::microbench;

fn main() {
    let cfg = SimConfig { rgid_bits: 10, ..SimConfig::default() }.with_max_cycles(100_000_000);
    for w in [microbench::nested_mispred(2000), microbench::linear_mispred(2000)] {
        println!("== {} ==", w.name());
        let base = w.run(cfg.clone(), None);
        println!(
            "  baseline   : {:>8} cycles  IPC {:.3}  ({} mispredictions)",
            base.cycles,
            base.ipc(),
            base.mispredictions
        );
        let engines: Vec<(&str, Box<dyn ReuseEngine>)> = vec![
            ("dci (1 stream)", Box::new(MultiStreamReuse::dci())),
            ("mssr (4 streams)", Box::new(MultiStreamReuse::new(MssrConfig::default()))),
            ("ri (64x4)", Box::new(RegisterIntegration::new(RiConfig::default()))),
        ];
        for (name, engine) in engines {
            let s = w.run(cfg.clone(), Some(engine));
            let e = &s.engine;
            println!(
                "  {name:<11}: {:>8} cycles  {:+.2}%  reused {:>6}  reconv {:>5} (simple {} / sw {} / hw {})",
                s.cycles,
                100.0 * (base.cycles as f64 / s.cycles as f64 - 1.0),
                e.reuse_grants,
                e.reconvergences,
                e.recon_simple,
                e.recon_software,
                e.recon_hardware,
            );
        }
        println!();
    }
    println!("The nested variant resolves its branches out of order, so part of its");
    println!("reconvergence is hardware-induced (visible in the hw column) — the case");
    println!("only a multi-stream design can exploit.");
}
