//! GAP-style graph analytics under squash reuse: run the six graph
//! kernels over a generated random graph and compare the baseline with
//! the Multi-Stream Squash Reuse engine (the paper's Figure 10 GAP
//! columns in miniature).
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use mssr::core::{MssrConfig, MultiStreamReuse};
use mssr::sim::SimConfig;
use mssr::workloads::{gap, graph::Graph};

fn main() {
    let g = Graph::uniform(512, 8, 12);
    let tg = Graph::uniform(128, 8, 12);
    println!("graph: {} vertices, {} directed edges", g.n(), g.edges());
    println!();
    println!(
        "{:<10} {:>10} {:>10} {:>9} {:>8} {:>8}",
        "kernel", "base cyc", "mssr cyc", "speedup", "IPC", "reused"
    );
    let cfg = SimConfig { rgid_bits: 10, ..SimConfig::default() }.with_max_cycles(200_000_000);
    for w in [gap::bfs(&g), gap::bc(&g), gap::cc(&g), gap::pr(&g), gap::sssp(&g), gap::tc(&tg)] {
        let base = w.run(cfg.clone(), None);
        let s = w.run(
            cfg.clone(),
            Some(Box::new(MultiStreamReuse::new(
                MssrConfig::default().with_log_entries(256).with_wpb_entries(64),
            ))),
        );
        println!(
            "{:<10} {:>10} {:>10} {:>8.2}% {:>8.3} {:>8}",
            w.name().split('/').next().unwrap_or(w.name()),
            base.cycles,
            s.cycles,
            100.0 * (base.cycles as f64 / s.cycles as f64 - 1.0),
            s.ipc(),
            s.engine.reuse_grants,
        );
    }
    println!();
    println!("Expected shape (paper Figure 10): bfs/bc/cc benefit most; pr and tc");
    println!("are memory-bound or predictable and show little change.");
}
