//! Quickstart: assemble a small program, run it on the baseline core and
//! on a core with Multi-Stream Squash Reuse, and compare.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mssr::core::{MssrConfig, MultiStreamReuse};
use mssr::isa::{regs::*, Assembler};
use mssr::sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop with a hard-to-predict branch (driven by a hash of the loop
    // counter) followed by branch-independent work — the pattern squash
    // reuse recycles.
    let mut a = Assembler::new();
    a.li(S0, 0); // i
    a.li(S1, 2000); // iterations
    a.li(S3, 0x1234); // hash state
    a.li(S4, 0x9e3779b97f4a7c15u64 as i64);
    a.label("loop");
    a.mul(S3, S3, S4); // hash the counter
    a.srli(T0, S3, 29);
    a.xor(S3, S3, T0);
    a.mul(T1, S3, S4); // slow down the branch condition
    a.mul(T1, T1, S4);
    a.andi(T2, T1, 1);
    a.beq(T2, ZERO, "skip"); // hard-to-predict branch
    a.addi(S5, S5, 3);
    a.label("skip");
    a.mul(T3, S0, S0); // control-independent work
    a.add(S6, S6, T3);
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "loop");
    a.st(ZERO, S6, 0x100);
    a.halt();
    let program = a.assemble()?;

    // Baseline: no squash reuse.
    let mut base = Simulator::new(SimConfig::default(), program.clone());
    let base_stats = base.run();

    // Multi-Stream Squash Reuse, the paper's default configuration
    // (4 streams x 16 WPB blocks x 64 Squash Log entries).
    let engine = MultiStreamReuse::new(MssrConfig::default());
    let mut mssr = Simulator::with_engine(SimConfig::default(), program, Box::new(engine));
    let mssr_stats = mssr.run();

    assert_eq!(
        base.read_mem_u64(0x100),
        mssr.read_mem_u64(0x100),
        "squash reuse never changes architectural results"
    );

    println!(
        "baseline : {} cycles, IPC {:.3}, {} mispredictions",
        base_stats.cycles,
        base_stats.ipc(),
        base_stats.mispredictions
    );
    println!(
        "mssr     : {} cycles, IPC {:.3}, {} results reused from squashed streams",
        mssr_stats.cycles,
        mssr_stats.ipc(),
        mssr_stats.engine.reuse_grants
    );
    println!(
        "speedup  : {:+.2}%",
        100.0 * (base_stats.cycles as f64 / mssr_stats.cycles as f64 - 1.0)
    );
    println!();
    println!("--- full report (mssr run) ---");
    print!("{}", mssr_stats.report());
    Ok(())
}
