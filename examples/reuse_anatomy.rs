//! The anatomy of one squash reuse, after the paper's Figure 5
//! walkthrough: an if-then-else whose branch mispredicts, whose wrong
//! path executes the reconvergent instructions, and whose corrected path
//! reuses them.
//!
//! The program is the paper's shape:
//!
//! ```text
//! I1: branch (hard to predict)        <- diverging branch
//! I2: a2 = a2 >> 1   \ else side
//! I3: a2 = a2 + 1    /
//! I4: jump I7
//! I5: a2 = a2 >> 2   \ then side
//! I6: a2 = a2 - 1    /
//! I7: a1 = a1 + 1    \
//! I8: a1 = a1 >> 1    | reconvergence region (CI)
//! I9: a2 = a2 >> 1   /
//! ```
//!
//! `I7`/`I8` depend only on `a1`, untouched by either side — they are
//! CIDI and reusable. `I9` depends on `a2`, written by both sides — its
//! RGIDs mismatch and it must re-execute, exactly the paper's ③④ vs ⑩
//! cases.
//!
//! ```sh
//! cargo run --release --example reuse_anatomy
//! ```

use mssr::core::{MssrConfig, MultiStreamReuse};
use mssr::isa::{regs::*, Assembler};
use mssr::sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut a = Assembler::new();
    a.li(S0, 0); // loop counter
    a.li(S1, 3000);
    a.li(A1, 7); // the paper's a1
    a.li(A2, 1000); // the paper's a2
    a.li(S3, 0xfeed);
    a.li(S4, 0x9e3779b97f4a7c15u64 as i64);
    a.label("loop");
    // A late-resolving pseudo-random condition for I1.
    a.mul(S3, S3, S4);
    a.srli(T0, S3, 29);
    a.xor(S3, S3, T0);
    a.mul(T1, S3, S4);
    a.mul(T1, T1, S4);
    a.andi(T2, T1, 1);
    a.beq(T2, ZERO, "i5"); // I1
    a.srli(A2, A2, 1); // I2
    a.addi(A2, A2, 1); // I3
    a.j("i7"); // I4
    a.label("i5");
    a.srli(A2, A2, 2); // I5
    a.addi(A2, A2, -1); // I6
    a.label("i7");
    a.addi(A1, A1, 1); // I7  <- CIDI, reusable
    a.srli(A1, A1, 1); // I8  <- CIDI, reusable
    a.srli(A2, A2, 1); // I9  <- data-dependent on the branch
    a.addi(A2, A2, 64); // keep a2 from collapsing to zero
    a.add(S5, S5, A1);
    a.add(S5, S5, A2);
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "loop");
    a.st(ZERO, S5, 0x100);
    a.halt();
    let program = a.assemble()?;

    let cfg = SimConfig { rgid_bits: 10, ..SimConfig::default() }.with_max_cycles(50_000_000);
    let mut base = Simulator::new(cfg.clone(), program.clone());
    let b = base.run();
    let engine = MultiStreamReuse::new(MssrConfig::default());
    let mut sim = Simulator::with_engine(cfg, program, Box::new(engine));
    let s = sim.run();
    assert_eq!(base.read_mem_u64(0x100), sim.read_mem_u64(0x100));

    let e = &s.engine;
    println!(
        "{} mispredictions of I1; {} reconvergences detected at I7",
        s.mispredictions, e.reconvergences
    );
    println!();
    println!(
        "reuse tests            : {:>7}   (every instruction compared in lockstep)",
        e.reuse_tests
    );
    println!("reused (RGIDs matched) : {:>7}   <- the I7/I8 CIDI instructions", e.reuse_grants);
    println!(
        "stale (RGID mismatch)  : {:>7}   <- the I9 case: a2 was renamed on the",
        e.reuse_fail_stale
    );
    println!("                                    correct path, its generation moved on");
    println!("not executed in time   : {:>7}", e.reuse_fail_not_executed);
    println!();
    println!(
        "cycles: {} -> {} ({:+.2}%)",
        b.cycles,
        s.cycles,
        100.0 * (b.cycles as f64 / s.cycles as f64 - 1.0)
    );
    println!();
    println!("How the test works (paper §3.1): every architectural-to-physical mapping");
    println!("carries a generation id (RGID). I7's source a1 has the same RGID in the");
    println!("squashed stream and the corrected stream, so its old physical register —");
    println!("still holding the wrong-path result — is remapped directly and the");
    println!("instruction retires without executing. I9's source a2 was renamed by the");
    println!("correct path (new generation), so the comparison fails and I9 re-executes.");
    Ok(())
}
