//! Writing your own workload with the assembler API: a string-search
//! kernel (count occurrences of a byte pattern in a buffer) built from
//! scratch, registered as a `Workload` with architectural checks, and
//! run under every engine.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use mssr::core::{MssrConfig, MultiStreamReuse, RegisterIntegration, RiConfig};
use mssr::isa::{regs::*, Assembler};
use mssr::sim::{ReuseEngine, SimConfig};
use mssr::workloads::{graph::SplitMix64, Check, Suite, Workload};

const HAYSTACK: u64 = 0x10_0000;
const RESULT: u64 = 0x8000;

fn build(len: u64, needle: u64) -> Workload {
    // Haystack of small values, so the needle occurs often enough for the
    // match branch to be taken unpredictably.
    let mut rng = SplitMix64::new(0xcafe);
    let hay: Vec<u64> = (0..len).map(|_| rng.next_u64() % 5).collect();

    let mut a = Assembler::new();
    // S0=&hay S1=len S2=needle S3=count S4=positions-checksum
    a.li(S0, HAYSTACK as i64);
    a.li(S1, len as i64);
    a.li(S2, needle as i64);
    a.li(S3, 0);
    a.li(S4, 0);
    a.li(T0, 0);
    a.label("scan");
    a.bge(T0, S1, "done");
    a.slli(T1, T0, 3);
    a.add(T1, T1, S0);
    a.ld(T2, T1, 0);
    a.bne(T2, S2, "miss"); // data-dependent match branch
    a.addi(S3, S3, 1);
    a.add(S4, S4, T0);
    a.label("miss");
    a.addi(T0, T0, 1);
    a.j("scan");
    a.label("done");
    a.st(ZERO, S3, RESULT as i64);
    a.st(ZERO, S4, (RESULT + 8) as i64);
    a.halt();

    // Rust reference for the checks.
    let count = hay.iter().filter(|&&x| x == needle).count() as u64;
    let possum: u64 =
        hay.iter().enumerate().filter(|(_, &x)| x == needle).map(|(i, _)| i as u64).sum();

    let mem = hay.iter().enumerate().map(|(i, &v)| (HAYSTACK + 8 * i as u64, v)).collect();
    Workload::new(
        "string-search",
        Suite::Micro,
        a.assemble().expect("assembles"),
        mem,
        vec![
            Check { addr: RESULT, expect: count, what: "match count" },
            Check { addr: RESULT + 8, expect: possum, what: "position checksum" },
        ],
    )
}

fn main() {
    let w = build(20_000, 3);
    println!("workload `{}`: {} static instructions", w.name(), w.static_insts());
    let cfg = SimConfig::default().with_max_cycles(50_000_000);
    let base = w.run(cfg.clone(), None);
    println!("baseline: {} cycles, IPC {:.3}", base.cycles, base.ipc());
    let engines: Vec<(&str, Box<dyn ReuseEngine>)> = vec![
        ("mssr", Box::new(MultiStreamReuse::new(MssrConfig::default()))),
        ("ri", Box::new(RegisterIntegration::new(RiConfig::default()))),
    ];
    for (name, e) in engines {
        let s = w.run(cfg.clone(), Some(e));
        println!(
            "{name:<8}: {} cycles ({:+.2}%), {} reused",
            s.cycles,
            100.0 * (base.cycles as f64 / s.cycles as f64 - 1.0),
            s.engine.reuse_grants
        );
    }
    println!("architectural checks passed under every engine.");
}
